"""The target instruction set: a faithful-in-spirit model of the IXP2400
microengine (MEv2) ISA.

The code generator emits these instruction objects with *virtual*
registers; register allocation rewrites them to *physical* registers
(two banks of 16 GPRs per thread -- an ALU instruction with two register
sources must take one from each bank); the assembler resolves labels and
checks the 4096-instruction control store limit. The simulator executes
the same objects directly -- there is no binary encoding, but each
instruction knows its control-store ``size`` and issue ``cycles`` so
code-store pressure and execution time are modeled honestly.

Simplifications relative to real MEv2 (documented in DESIGN.md):

* transfer registers are not allocated separately -- memory operations
  read/write GPRs directly; the extra xfer-to-GPR moves are folded into
  the instruction-count constants used by the packet-access lowering;
* ``immed`` of a >16-bit constant occupies 2 control-store words (like
  the real immed / immed_w1 pair) but is one object;
* branches take a 1-cycle taken penalty (the real pipeline aborts 1-3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

# -- registers -------------------------------------------------------------------

N_PER_BANK = 16


class VReg:
    """Virtual register (32-bit)."""

    __slots__ = ("id", "hint")
    _next = 0

    def __init__(self, hint: str = ""):
        self.id = VReg._next
        VReg._next += 1
        self.hint = hint

    def __repr__(self) -> str:
        return "v%d%s" % (self.id, ("<%s>" % self.hint) if self.hint else "")


@dataclass(frozen=True)
class PReg:
    """Physical GPR: bank 'a' or 'b', index 0..15."""

    bank: str
    index: int

    def __repr__(self) -> str:
        return "%s%d" % (self.bank, self.index)


@dataclass(frozen=True)
class Imm:
    value: int

    def __repr__(self) -> str:
        return "#%d" % self.value if 0 <= self.value < 4096 else "#%#x" % (self.value & 0xFFFFFFFF)


@dataclass(frozen=True)
class SymRef:
    """Link-time address of a global / lock / ring (resolved by the loader)."""

    name: str
    addend: int = 0

    def __repr__(self) -> str:
        if self.addend:
            return "&%s+%d" % (self.name, self.addend)
        return "&%s" % self.name


Reg = Union[VReg, PReg]
Operand = Union[VReg, PReg, Imm, SymRef]

ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "lshr", "ashr", "mul")
BR_CONDS = ("always", "eq", "ne", "lt_u", "le_u", "gt_u", "ge_u",
            "lt_s", "le_s", "gt_s", "ge_s")
SPACES = ("scratch", "sram", "dram")

# Memory-access categories for the Table-1 accounting.
CAT_PACKET = "pkt"  # packet data (DRAM) / packet metadata (SRAM) / rings
CAT_APP = "app"  # application globals, locks, stack overflow


class Insn:
    """Base instruction. ``size`` = control-store words; ``cycles`` =
    issue cycles charged by the simulator (memory wait time is separate).
    ``kind`` is the stable decode tag the simulator's predecode stage
    keys its step compilers on (:mod:`repro.ixp.predecode`); pseudo
    instructions that never reach the simulator leave it ``None``."""

    size = 1
    cycles = 1
    kind: Optional[str] = None
    _reads: Sequence[str] = ()
    _writes: Sequence[str] = ()

    def reads(self) -> List[Operand]:
        out: List[Operand] = []
        for attr in self._reads:
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                out.extend(v)
            else:
                out.append(v)
        return out

    def writes(self) -> List[Reg]:
        out: List[Reg] = []
        for attr in self._writes:
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                out.extend(v)
            else:
                out.append(v)
        return out

    def map_regs(self, fn) -> None:
        """Apply ``fn`` to every register operand (for regalloc rewrite)."""
        for attr in list(self._reads) + list(self._writes):
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                setattr(self, attr, [fn(x) if isinstance(x, (VReg, PReg)) else x for x in v])
            elif isinstance(v, (VReg, PReg)):
                setattr(self, attr, fn(v))

    def __repr__(self) -> str:
        from repro.cg.asmprint import format_insn

        return format_insn(self)


class Alu(Insn):
    kind = "alu"
    _reads = ("a", "b")
    _writes = ("dst",)

    def __init__(self, op: str, dst: Reg, a: Operand, b: Operand):
        assert op in ALU_OPS, op
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    @property
    def cycles(self) -> int:  # type: ignore[override]
        return 5 if self.op == "mul" else 1  # mul is a multi-step op on MEv2


class Immed(Insn):
    """Load a 32-bit constant (2 control-store words when >16 bits)."""
    kind = "immed"

    _writes = ("dst",)

    def __init__(self, dst: Reg, value: int):
        self.dst = dst
        self.value = value & 0xFFFFFFFF

    @property
    def size(self) -> int:  # type: ignore[override]
        return 1 if self.value < 0x10000 else 2

    @property
    def cycles(self) -> int:  # type: ignore[override]
        return self.size


class LoadSym(Insn):
    """Load a link-time symbol address. Two control-store words (the
    address is not known to fit 16 bits)."""
    kind = "loadsym"

    size = 2
    cycles = 2
    _writes = ("dst",)

    def __init__(self, dst: Reg, sym: SymRef):
        self.dst = dst
        self.sym = sym


class Mov(Insn):
    kind = "mov"
    _reads = ("src",)
    _writes = ("dst",)

    def __init__(self, dst: Reg, src: Operand):
        self.dst = dst
        self.src = src


class Cmp(Insn):
    """ALU compare: sets the thread's condition state to (a - b)."""
    kind = "cmp"

    _reads = ("a", "b")

    def __init__(self, a: Operand, b: Operand):
        self.a = a
        self.b = b


class Br(Insn):
    kind = "br"
    _reads = ()

    def __init__(self, cond: str, target: str):
        assert cond in BR_CONDS, cond
        self.cond = cond
        self.target = target
        self.resolved: Optional[int] = None  # instruction index after assembly


class Bal(Insn):
    """Branch and link: save the return index into ``link`` and jump.

    ``arg_regs`` are the ABI registers the callee consumes (reads, so
    nothing may clobber them between the argument moves and the call);
    ``ret_regs`` are the ABI result registers the call defines."""
    kind = "bal"

    _reads = ("arg_regs",)
    _writes = ("link", "ret_regs")

    def __init__(self, target: str, link: Reg, arg_regs: Optional[List[Reg]] = None,
                 ret_regs: Optional[List[Reg]] = None):
        self.target = target
        self.link = link
        self.arg_regs: List[Reg] = list(arg_regs or [])
        self.ret_regs: List[Reg] = list(ret_regs or [])
        self.resolved: Optional[int] = None


class Rtn(Insn):
    """Indirect jump through a register (function return). ``result_regs``
    keeps the ABI return registers live through the jump."""
    kind = "rtn"

    _reads = ("addr", "result_regs")

    def __init__(self, addr: Operand, result_regs: Optional[List[Reg]] = None):
        self.addr = addr
        self.result_regs: List[Reg] = list(result_regs or [])


class Mem(Insn):
    """A scratch/SRAM/DRAM reference. ``units`` counts words for scratch
    and SRAM (1..8 words = 4..32 B) and quadwords for DRAM (1..8 = 8..64
    B). ``regs`` receives (read) or supplies (write) one 32-bit register
    per *word* moved. ``byte_mask`` (writes only) enables partial-byte
    writes within the transfer. The issuing thread always swaps out until
    completion (``ctx_swap``), which is how IXP code hides latency."""
    kind = "mem"

    _reads = ("addr_a", "addr_b", "regs_in", "mask_reg")
    _writes = ("regs_out",)

    def __init__(self, space: str, rw: str, regs: List[Reg], addr_a: Operand,
                 addr_b: Operand, units: int, category: str = CAT_APP,
                 byte_mask=None):
        assert space in SPACES and rw in ("read", "write")
        words = units * 2 if space == "dram" else units
        assert 1 <= units <= 8
        assert len(regs) == words, (space, units, len(regs))
        self.space = space
        self.rw = rw
        self.addr_a = addr_a
        self.addr_b = addr_b
        self.units = units
        self.category = category
        # Static masks stay integers; dynamic masks (indirect_ref on real
        # hardware) are a register operand.
        if byte_mask is None or isinstance(byte_mask, int):
            self.byte_mask: Optional[int] = byte_mask
            self.mask_reg = None
        else:
            self.byte_mask = None
            self.mask_reg = byte_mask
        if rw == "read":
            self.regs_out = regs
            self.regs_in: List[Reg] = []
        else:
            self.regs_in = regs
            self.regs_out = []

    @property
    def regs(self) -> List[Reg]:
        return self.regs_out if self.rw == "read" else self.regs_in

    @property
    def words(self) -> int:
        return self.units * 2 if self.space == "dram" else self.units


class RingGet(Insn):
    """Pop one word from a scratch ring; 0 if the ring is empty."""
    kind = "ring_get"

    _writes = ("dst",)

    def __init__(self, dst: Reg, ring: SymRef, category: str = CAT_PACKET):
        self.dst = dst
        self.ring = ring
        self.category = category


class RingPut(Insn):
    kind = "ring_put"
    _reads = ("src",)

    def __init__(self, ring: SymRef, src: Operand, category: str = CAT_PACKET):
        self.ring = ring
        self.src = src
        self.category = category


class TestAndSet(Insn):
    """Atomic scratch test-and-set (returns the previous value)."""
    kind = "tas"

    _reads = ("addr_a",)
    _writes = ("dst",)

    def __init__(self, dst: Reg, addr_a: Operand):
        self.dst = dst
        self.addr_a = addr_a


class AtomicRelease(Insn):
    """Scratch atomic write of zero (lock release)."""
    kind = "release"

    _reads = ("addr_a",)

    def __init__(self, addr_a: Operand):
        self.addr_a = addr_a


class LmRead(Insn):
    """Local Memory read. With a constant index (``base`` None) this is
    offset-addressed and single-cycle; an indexed access costs the
    3-cycle LM pointer latency. ``thread_rel`` makes the address relative
    to the thread's private LM window (the per-context LM_ADDR CSR set at
    boot) -- that is how stack frames are addressed."""
    kind = "lm_read"

    _reads = ("base",)
    _writes = ("dst",)

    def __init__(self, dst: Reg, base: Optional[Operand], offset: int,
                 thread_rel: bool = False):
        self.dst = dst
        self.base = base
        self.offset = offset
        self.thread_rel = thread_rel

    @property
    def cycles(self) -> int:  # type: ignore[override]
        return 1 if self.base is None else 3


class LmWrite(Insn):
    kind = "lm_write"
    _reads = ("base", "src")

    def __init__(self, base: Optional[Operand], offset: int, src: Operand,
                 thread_rel: bool = False):
        self.base = base
        self.offset = offset
        self.src = src
        self.thread_rel = thread_rel

    @property
    def cycles(self) -> int:  # type: ignore[override]
        return 1 if self.base is None else 3


class ThreadStackAddr(Insn):
    """Materialize this thread's SRAM stack-overflow base address (a
    local_csr read plus address arithmetic)."""
    kind = "thread_stack_addr"

    size = 2
    cycles = 2
    _writes = ("dst",)

    def __init__(self, dst: Reg):
        self.dst = dst


class CamLookup(Insn):
    kind = "cam_lookup"
    _reads = ("key",)
    _writes = ("dst",)

    def __init__(self, dst: Reg, key: Operand):
        self.dst = dst
        self.key = key


class CamWrite(Insn):
    kind = "cam_write"
    _reads = ("entry", "key")

    def __init__(self, entry: Operand, key: Operand):
        self.entry = entry
        self.key = key


class CamClear(Insn):
    kind = "cam_clear"
    pass


class CtxArb(Insn):
    """Voluntarily yield to the next ready thread."""
    kind = "ctx_arb"


class Halt(Insn):
    kind = "halt"
    pass


# -- containers ----------------------------------------------------------------------


class LIRBlock:
    def __init__(self, label: str):
        self.label = label
        self.insns: List[Insn] = []

    def emit(self, insn: Insn) -> Insn:
        self.insns.append(insn)
        return insn


class LIRFunction:
    """One function in LIR form. Blocks execute in list order with
    explicit branches; fallthrough to the next block is implicit."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: List[LIRBlock] = []
        self.frame_slots = 0  # stack words (assigned by regalloc/lowering)
        self.is_leaf = True
        self.entry_label = "%s__entry" % _mangle(name)

    def new_block(self, label: str) -> LIRBlock:
        bb = LIRBlock(label)
        self.blocks.append(bb)
        return bb

    def all_insns(self):
        for bb in self.blocks:
            yield from bb.insns

    def insn_size(self) -> int:
        return sum(i.size for i in self.all_insns())


def _mangle(name: str) -> str:
    return name.replace(".", "_").replace("<", "_").replace(">", "_")


# Pseudo-instructions resolved by the stack layout stage -----------------------------


class StackRead(Insn):
    """Read a 32-bit stack slot of the current function's frame. The
    stack layout stage turns this into an offset-addressed LmRead (fast)
    or an SRAM access (overflow)."""

    _reads = ("index",)
    _writes = ("dst",)

    def __init__(self, dst: Reg, slot: int, index: Optional[Operand] = None,
                 extent: int = 1):
        self.dst = dst
        self.slot = slot  # word offset within the frame
        self.index = index  # optional dynamic word index (local arrays)
        self.extent = extent  # words potentially touched (arrays)


class StackWrite(Insn):
    _reads = ("index", "src")

    def __init__(self, slot: int, src: Operand, index: Optional[Operand] = None,
                 extent: int = 1):
        self.slot = slot
        self.src = src
        self.index = index
        self.extent = extent
