"""Calling convention and reserved registers.

Baker has no recursion, so frames are statically placed (section 5.4)
and the convention can stay minimal:

* up to six 32-bit arguments in ``a0,b0,a1,b1,a2,b2`` (64-bit values use
  two consecutive slots, high word first);
* 32-bit results in ``a0``; 64-bit results in ``a0`` (high) / ``b0`` (low);
* the return address is deposited in ``b15`` by ``bal``; non-leaf
  functions save it to frame slot 0;
* calls clobber every GPR: values live across a call live in the frame
  (which is what makes frame placement -- Local Memory vs SRAM -- so
  performance-critical, and why -O2 inlining pays);
* ``a15`` is reserved for post-allocation bank-conflict fixups.
"""

from __future__ import annotations

from typing import List

from repro.cg.isa import PReg

ARG_REGS: List[PReg] = [
    PReg("a", 0), PReg("b", 0), PReg("a", 1),
    PReg("b", 1), PReg("a", 2), PReg("b", 2),
]
RET_LO = PReg("a", 0)
RET_HI = PReg("b", 0)
LINK = PReg("b", 15)
FIXUP_A = PReg("a", 15)  # bank-conflict fixup temp (A bank)
FIXUP_B = PReg("b", 14)  # bank-conflict fixup temp (B bank)
FIXUP = FIXUP_A

# Helper subroutines (the out-of-line packet handling routines used at
# BASE/-O1) additionally scratch these without saving:
HELPER_TEMPS: List[PReg] = [PReg("a", 3), PReg("b", 3), PReg("a", 4), PReg("b", 4),
                            PReg("a", 5), PReg("b", 5), PReg("a", 6), PReg("b", 6)]

RESERVED = {LINK, FIXUP_A, FIXUP_B}

LINK_SLOT = 0  # frame slot for the saved return address (non-leaf only)
