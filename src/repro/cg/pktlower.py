"""Packet-primitive lowering: IR packet instructions -> ME code.

Three code shapes, matching the paper's cost discussion (section 5.3):

* **generic** -- the handle's head offset is unknown at compile time: read
  the packet metadata (SRAM) for ``buf``/``head``, compute a dynamic DRAM
  address, read a 16 B window and extract with *dynamic* shifts (the
  ``38 + 5*words``-instruction path);
* **static** (SOAR resolved) -- the absolute offset is a compile-time
  constant: one metadata word (``buf``), constant address arithmetic and
  constant-shift extraction;
* **wide** (PAC) -- ``PktLoadWords``/``PktStoreWords`` move many words per
  DRAM instruction; byte-masked writes avoid read-modify-write.

At BASE/-O1 (``opts.inline`` false) the generic field access and
head-movement sequences are emitted once as shared out-of-line helper
routines and called via ``bal`` -- these are the "base packet handling
routines" that -O2 inlines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.baker.packetmodel import (
    HEADROOM_BYTES,
    META_BUF_ADDR,
    META_HEAD_OFF,
    META_PKT_LEN,
)
from repro.cg import abi
from repro.cg import isa
from repro.cg.isa import (
    Alu, Bal, Br, Cmp, Imm, Immed, LIRFunction, Mem, Mov, RingGet, RingPut,
    Rtn, SymRef, VReg,
)
from repro.ir import instructions as I
from repro.ir.values import Const, Operand, Temp

PKT = isa.CAT_PACKET


# ---------------------------------------------------------------------------
# Emitter interface: FunctionLowerer provides these; HelperBuilder mirrors it
# so the same emission code builds both inline sequences and helper bodies.
# ---------------------------------------------------------------------------


class HelperBuilder:
    """Builds an out-of-line helper routine (leaf, bal/rtn convention)."""

    def __init__(self, name: str):
        self.fn = LIRFunction(name)
        self.cur = self.fn.new_block(self.fn.entry_label)
        self._label_n = 0

    def vreg(self, hint: str = "") -> VReg:
        return VReg(hint)

    def emit(self, insn):
        return self.cur.emit(insn)

    def label(self, hint: str) -> str:
        self._label_n += 1
        return "%s__%s%d" % (self.fn.entry_label, hint, self._label_n)

    def new_block(self, label: Optional[str] = None, hint: str = "l"):
        from repro.cg.isa import LIRBlock

        bb = LIRBlock(label or self.label(hint))
        blocks = self.fn.blocks
        if self.cur is not None and self.cur in blocks:
            blocks.insert(blocks.index(self.cur) + 1, bb)
        else:
            blocks.append(bb)
        self.cur = bb
        return bb

    def materialize(self, value: int, hint: str = "c") -> VReg:
        r = self.vreg(hint)
        self.emit(Immed(r, value & 0xFFFFFFFF))
        return r


# -- dispatch --------------------------------------------------------------------


def lower_packet_instr(fl, instr: I.PktInstr) -> None:
    """Entry point called by the function lowerer."""
    if isinstance(instr, I.MetaLoad):
        _meta_word_read(fl, fl.reg32(instr.ph), instr.word, fl.dst32(instr.dst))
    elif isinstance(instr, I.MetaStore):
        _meta_word_write(fl, fl.reg32(instr.ph), instr.word, fl.reg32(instr.value))
    elif isinstance(instr, I.PktLength):
        _meta_word_read(fl, fl.reg32(instr.ph), META_PKT_LEN, fl.dst32(instr.dst))
    elif isinstance(instr, I.PktLoadField):
        _lower_field_load(fl, instr)
    elif isinstance(instr, I.PktStoreField):
        _lower_field_store(fl, instr)
    elif isinstance(instr, I.PktLoadWords):
        _lower_wide_load(fl, instr)
    elif isinstance(instr, I.PktStoreWords):
        _lower_wide_store(fl, instr)
    elif isinstance(instr, (I.PktEncap, I.PktDecap)):
        _lower_headmove(fl, instr)
    elif isinstance(instr, I.PktSyncHead):
        new_head = _emit_headmove(
            fl, fl.reg32(instr.ph),
            Imm(instr.delta_bytes & 0xFFFFFFFF)
            if 0 <= instr.delta_bytes <= 0xFF
            else fl.materialize(instr.delta_bytes & 0xFFFFFFFF))
        if isinstance(instr.ph, Temp):
            fl.meta_memo[_memo_key(fl, instr.ph, "head")] = new_head
    elif isinstance(instr, I.PktAdjust):
        _lower_adjust(fl, instr)
    elif isinstance(instr, I.PktDrop):
        _lower_drop(fl, instr)
    elif isinstance(instr, I.PktCreate):
        _lower_create(fl, instr)
    elif isinstance(instr, I.PktCopy):
        _lower_copy(fl, instr)
    else:  # pragma: no cover
        raise NotImplementedError(type(instr).__name__)


# -- metadata access with per-block memoization ----------------------------------


def _memo_key(fl, ph: Operand, what: str):
    if isinstance(ph, Temp):
        return (fl.aliases.class_of(ph), what)
    return (id(ph), what)


def _meta_word_read(fl, ph_reg, word: int, dst) -> None:
    fl.emit(Mem("sram", "read", [dst], ph_reg, Imm(word * 4), 1, category=PKT))


def _meta_word_write(fl, ph_reg, word: int, src) -> None:
    fl.emit(Mem("sram", "write", [src], ph_reg, Imm(word * 4), 1, category=PKT))


def _get_buf(fl, instr) -> VReg:
    ph = instr.ph if hasattr(instr, "ph") else instr.src
    if isinstance(ph, Temp):
        persistent = fl.persistent_buf.get(fl.aliases.class_of(ph))
        if persistent is not None:
            return persistent
    key = _memo_key(fl, ph, "buf")
    cached = fl.meta_memo.get(key)
    if cached is not None:
        return cached
    buf = fl.vreg("buf")
    _meta_word_read(fl, fl.reg32(ph), META_BUF_ADDR, buf)
    fl.meta_memo[key] = buf
    return buf


def _get_buf_head(fl, instr) -> Tuple[VReg, VReg]:
    ph = instr.ph if hasattr(instr, "ph") else instr.src
    bkey = _memo_key(fl, ph, "buf")
    hkey = _memo_key(fl, ph, "head")
    buf = fl.meta_memo.get(bkey)
    if buf is None and isinstance(ph, Temp):
        buf = fl.persistent_buf.get(fl.aliases.class_of(ph))
    head = fl.meta_memo.get(hkey)
    if buf is not None and head is not None:
        return buf, head
    if buf is not None:
        head = fl.vreg("head")
        _meta_word_read(fl, fl.reg32(ph), META_HEAD_OFF, head)
        fl.meta_memo[hkey] = head
        return buf, head
    if head is not None:
        buf = fl.vreg("buf")
        _meta_word_read(fl, fl.reg32(ph), META_BUF_ADDR, buf)
        fl.meta_memo[bkey] = buf
        return buf, head
    buf = fl.vreg("buf")
    head = fl.vreg("head")
    fl.emit(Mem("sram", "read", [buf, head], fl.reg32(ph), Imm(0), 2, category=PKT))
    fl.meta_memo[bkey] = buf
    fl.meta_memo[hkey] = head
    return buf, head


def _invalidate_head(fl, ph: Operand) -> None:
    fl.meta_memo.pop(_memo_key(fl, ph, "head"), None)


def _is_static(fl, instr) -> bool:
    return fl.ctx.opts.soar and getattr(instr, "c_offset_bits", None) is not None


# -- constant-shift extraction from a word window ----------------------------------


def _extract_const32(E, window: List[VReg], rel_bit: int, width: int, dst) -> None:
    """dst = ``width``(<=32) bits of the window starting at ``rel_bit``."""
    wi = rel_bit // 32
    sh = rel_bit % 32
    if sh == 0:
        aligned = window[wi]
    elif sh + width <= 32:
        aligned = window[wi]
    else:
        t1 = E.vreg()
        E.emit(Alu("shl", t1, window[wi], Imm(sh)))
        t2 = E.vreg()
        E.emit(Alu("lshr", t2, window[wi + 1], Imm(32 - sh)))
        aligned = E.vreg()
        E.emit(Alu("or", aligned, t1, t2))
        sh = 0
    # aligned holds the field starting at bit `sh`.
    right = 32 - sh - width
    if right == 0 and width == 32:
        E.emit(Mov(dst, aligned))
        return
    if right:
        t = E.vreg()
        E.emit(Alu("lshr", t, aligned, Imm(right)))
        aligned = t
    if width < 32:
        mask = (1 << width) - 1
        m = Imm(mask) if mask <= 0xFF else E.materialize(mask, "mask")
        E.emit(Alu("and", dst, aligned, m))
    else:
        E.emit(Mov(dst, aligned))


def _extract_const64(E, window: List[VReg], rel_bit: int, width: int,
                     dst_hi, dst_lo) -> None:
    _extract_const32(E, window, rel_bit + width - 32, 32, dst_lo)
    _extract_const32(E, window, rel_bit, width - 32, dst_hi)


# -- static (SOAR-resolved) data access ---------------------------------------------


def _static_window_read(fl, instr, abs_bit: int, width: int) -> Tuple[List[VReg], int]:
    """Read the 8B-aligned DRAM window covering [abs_bit, abs_bit+width).
    Returns (window words, rel_bit of abs_bit within the window). The
    absolute offset is relative to packet-data start; the buffer address
    is 2 KiB aligned so alignment folds into constants. Encapsulation can
    move the head *before* data start (into the headroom), so addresses
    are biased by HEADROOM_BYTES."""
    abs_bit += HEADROOM_BYTES * 8
    first_byte = (abs_bit // 8) & ~7
    last_byte = (abs_bit + width - 1) // 8
    units = (last_byte - first_byte) // 8 + 1
    buf = _get_buf(fl, instr)
    window = [fl.vreg("w%d" % i) for i in range(units * 2)]
    # A DRAM instruction moves at most 8 quadwords; split larger windows.
    done = 0
    while done < units:
        chunk = min(8, units - done)
        fl.emit(Mem("dram", "read", window[done * 2 : (done + chunk) * 2], buf,
                    Imm(first_byte + done * 8), chunk, category=PKT))
        done += chunk
    return window, abs_bit - first_byte * 8


def _static_field_load(fl, instr: I.PktLoadField) -> None:
    abs_bit = instr.c_offset_bits + instr.bit_off
    window, rel = _static_window_read(fl, instr, abs_bit, instr.bit_width)
    if instr.bit_width > 32:
        hi, lo = fl.dst_pair(instr.dst)
        _extract_const64(fl, window, rel, instr.bit_width, hi, lo)
    else:
        _extract_const32(fl, window, rel, instr.bit_width, fl.dst32(instr.dst))


# -- generic (dynamic-offset) data access --------------------------------------------


def _generic_addr(E, buf, head, f_byte: int) -> VReg:
    """A = buf + head + f_byte + HEADROOM bias folded into head by Rx."""
    t = E.vreg("A")
    E.emit(Alu("add", t, buf, head))
    if f_byte:
        t2 = E.vreg("A")
        E.emit(Alu("add", t2, t, Imm(f_byte) if f_byte <= 0xFF
                   else E.materialize(f_byte)))
        return t2
    return t


def _generic_window_read(E, addr: VReg) -> Tuple[List[VReg], VReg, VReg]:
    """Read the 16 B window at addr&~7; returns (w0..w3, woff, bitpos)
    where woff = (addr>>2)&1 and bitpos = (addr&3)*8."""
    base = E.vreg("base")
    t = E.vreg()
    E.emit(Alu("lshr", t, addr, Imm(3)))
    E.emit(Alu("shl", base, t, Imm(3)))
    window = [E.vreg("gw%d" % i) for i in range(4)]
    E.emit(Mem("dram", "read", window, base, Imm(0), 2, category=PKT))
    woff = E.vreg("woff")
    t2 = E.vreg()
    E.emit(Alu("lshr", t2, addr, Imm(2)))
    E.emit(Alu("and", woff, t2, Imm(1)))
    bitpos = E.vreg("bitpos")
    t3 = E.vreg()
    E.emit(Alu("and", t3, addr, Imm(3)))
    E.emit(Alu("shl", bitpos, t3, Imm(3)))
    return window, woff, bitpos


def _select_words(E, window: List[VReg], woff: VReg, count: int) -> List[VReg]:
    """p[0..count) = window[woff..woff+count) via a branch (no indexed
    register file on the ME)."""
    picks = [E.vreg("p%d" % i) for i in range(count)]
    l_zero = E.label("sel0")
    l_done = E.label("seld")
    E.emit(Cmp(woff, Imm(0)))
    E.emit(Br("eq", l_zero))
    for i in range(count):
        E.emit(Mov(picks[i], window[i + 1]))
    E.emit(Br("always", l_done))
    E.new_block(l_zero)
    for i in range(count):
        E.emit(Mov(picks[i], window[i]))
    E.new_block(l_done)
    return picks


def _dyn_funnel(E, w0: VReg, w1: VReg, shift: VReg) -> VReg:
    """(w0 << shift) | (w1 >> (32-shift)), correct for shift == 0."""
    hi = E.vreg()
    E.emit(Alu("shl", hi, w0, shift))
    rsh = E.vreg()
    E.emit(Alu("sub", rsh, Imm(32), shift))
    lo = E.vreg()
    E.emit(Alu("lshr", lo, w1, rsh))
    l_nz = E.label("fz")
    E.emit(Cmp(shift, Imm(0)))
    E.emit(Br("ne", l_nz))
    E.emit(Immed(lo, 0))
    E.new_block(l_nz)
    out = E.vreg()
    E.emit(Alu("or", out, hi, lo))
    return out


def _generic_load_body(E, ph, byte_off: Union[VReg, Imm], f_bit: int, width: int,
                       out_lo: VReg, out_hi: Optional[VReg]) -> None:
    """The generic field-load sequence (used inline at -O2+, or as a
    helper body at BASE/-O1). ``byte_off`` is the field's byte offset
    relative to the (dynamic) head."""
    buf = E.vreg("buf")
    head = E.vreg("head")
    E.emit(Mem("sram", "read", [buf, head], ph, Imm(0), 2, category=PKT))
    addr = E.vreg("A")
    E.emit(Alu("add", addr, buf, head))
    if not (isinstance(byte_off, Imm) and byte_off.value == 0):
        addr2 = E.vreg("A")
        E.emit(Alu("add", addr2, addr, byte_off))
        addr = addr2
    window, woff, bitpos = _generic_window_read(E, addr)
    if f_bit:
        bp2 = E.vreg("bitpos")
        E.emit(Alu("add", bp2, bitpos, Imm(f_bit)))
        bitpos = bp2
        # f_bit < 8 keeps bitpos < 32, so the funnel still works.
    if width <= 32:
        p = _select_words(E, window, woff, 2)
        v = _dyn_funnel(E, p[0], p[1], bitpos)
        if width < 32:
            t = E.vreg()
            E.emit(Alu("lshr", t, v, Imm(32 - width)))
            E.emit(Mov(out_lo, t))
        else:
            E.emit(Mov(out_lo, v))
        return
    p = _select_words(E, window, woff, 3)
    hi64 = _dyn_funnel(E, p[0], p[1], bitpos)
    lo64 = _dyn_funnel(E, p[1], p[2], bitpos)
    if width == 64:
        E.emit(Mov(out_hi, hi64))
        E.emit(Mov(out_lo, lo64))
        return
    # 33..63 bits: shift the 64-bit value right by (64 - width), constant.
    k = 64 - width
    t1 = E.vreg()
    E.emit(Alu("lshr", t1, lo64, Imm(k)))
    t2 = E.vreg()
    E.emit(Alu("shl", t2, hi64, Imm(32 - k)))
    E.emit(Alu("or", out_lo, t1, t2))
    E.emit(Alu("lshr", out_hi, hi64, Imm(k)))


def _lower_field_load(fl, instr: I.PktLoadField) -> None:
    if _is_static(fl, instr):
        _static_field_load(fl, instr)
        return
    f_byte = instr.bit_off // 8
    f_bit = instr.bit_off % 8
    width = instr.bit_width
    if width > 32:
        out_hi, out_lo = fl.dst_pair(instr.dst)
    else:
        out_hi, out_lo = None, fl.dst32(instr.dst)
    if fl.ctx.opts.inline:
        byte_op = Imm(f_byte) if f_byte <= 0xFF else fl.materialize(f_byte)
        _generic_load_body(fl, fl.reg32(instr.ph), byte_op, f_bit, width,
                           out_lo, out_hi)
        fl.meta_memo.clear()  # the body used private regs; keep it simple
        return
    # BASE/-O1: call the shared out-of-line helper.
    helper = _field_load_helper(fl.ctx, f_bit, width)
    fl.emit(Mov(abi.ARG_REGS[0], fl.reg32(instr.ph)))
    off = fl.vreg("boff")
    fl.emit(Immed(off, f_byte))
    fl.emit(Mov(abi.ARG_REGS[1], off))
    fl.emit(Bal(helper.entry_label, abi.LINK,
                arg_regs=[abi.ARG_REGS[0], abi.ARG_REGS[1]],
                ret_regs=[abi.RET_LO, abi.RET_HI]))
    fl.fn.is_leaf = False
    if width > 32:
        fl.emit(Mov(out_hi, abi.RET_HI))
    fl.emit(Mov(out_lo, abi.RET_LO))
    fl.meta_memo.clear()


def _field_load_helper(ctx, f_bit: int, width: int) -> LIRFunction:
    name = "__pkt_load_f%d_w%d" % (f_bit, width)
    fn = ctx.helpers.get(name)
    if fn is not None:
        return fn
    hb = HelperBuilder(name)
    ph = hb.vreg("ph")
    hb.emit(Mov(ph, abi.ARG_REGS[0]))
    off = hb.vreg("off")
    hb.emit(Mov(off, abi.ARG_REGS[1]))
    out_lo = hb.vreg("lo")
    out_hi = hb.vreg("hi") if width > 32 else None
    _generic_load_body(hb, ph, off, f_bit, width, out_lo, out_hi)
    results = [abi.RET_LO]
    if out_hi is not None:
        hb.emit(Mov(abi.RET_HI, out_hi))
        results.append(abi.RET_HI)
    hb.emit(Mov(abi.RET_LO, out_lo))
    hb.emit(Rtn(abi.LINK, result_regs=results))
    ctx.helpers[name] = hb.fn
    return hb.fn


# -- field stores -------------------------------------------------------------------


def _value_parts(E, value_lo, value_hi, width: int, rel_bit: int,
                 window_words: int) -> Tuple[List[Tuple[int, object]], int]:
    """Constant-shift placement: returns ([(word_index, operand)], mask)
    where each operand contributes (ORed) to that window word, and
    ``mask`` has bit (window_byte) set for every byte written (bit 0 =
    first byte of the window)."""
    parts: List[Tuple[int, object]] = []
    # Process as up to two 32-bit chunks, low chunk last.
    chunks = []
    if width > 32:
        chunks.append((rel_bit, width - 32, value_hi))
        chunks.append((rel_bit + width - 32, 32, value_lo))
    else:
        chunks.append((rel_bit, width, value_lo))
    mask = 0
    for bit0, w, val in chunks:
        for byte in range(bit0 // 8, (bit0 + w - 1) // 8 + 1):
            mask |= 1 << byte
        wi = bit0 // 32
        sh = bit0 % 32
        right = 32 - sh - w  # >=0 when the chunk fits this word
        if right >= 0:
            part = val
            if right:
                t = E.vreg()
                E.emit(Alu("shl", t, val, Imm(right)))
                part = t
            parts.append((wi, part))
        else:
            # Chunk crosses into the next word.
            spill = -right
            t1 = E.vreg()
            E.emit(Alu("lshr", t1, val, Imm(spill)))
            parts.append((wi, t1))
            t2 = E.vreg()
            E.emit(Alu("shl", t2, val, Imm(32 - spill)))
            parts.append((wi + 1, t2))
    return parts, mask


def _emit_masked_write(fl, instr, buf, first_byte: int, units: int,
                       parts, mask: int) -> None:
    words: List[VReg] = []
    for wi in range(units * 2):
        contribs = [p for i, p in parts if i == wi]
        if not contribs:
            words.append(fl.materialize(0, "z"))
            continue
        acc = contribs[0]
        for extra in contribs[1:]:
            t = fl.vreg()
            fl.emit(Alu("or", t, acc, extra))
            acc = t
        if not isinstance(acc, VReg):
            acc = fl.reg32(acc) if isinstance(acc, (Temp, Const)) else acc
        words.append(acc)
    done = 0
    while done < units:
        chunk = min(8, units - done)
        chunk_mask = (mask >> (done * 8)) & ((1 << (chunk * 8)) - 1)
        fl.emit(Mem("dram", "write", words[done * 2 : (done + chunk) * 2], buf,
                    Imm(first_byte + done * 8), chunk,
                    category=PKT, byte_mask=chunk_mask))
        done += chunk


def _static_field_store(fl, instr: I.PktStoreField) -> None:
    abs_bit = instr.c_offset_bits + instr.bit_off + HEADROOM_BYTES * 8
    width = instr.bit_width
    first_byte = (abs_bit // 8) & ~7
    last_byte = (abs_bit + width - 1) // 8
    units = (last_byte - first_byte) // 8 + 1
    rel = abs_bit - first_byte * 8
    buf = _get_buf(fl, instr)
    if instr.bit_off % 8 == 0 and width % 8 == 0:
        if width > 32:
            vhi, vlo = fl.pair(instr.value)
        else:
            vhi, vlo = None, fl.reg32(instr.value)
        parts, mask = _value_parts(fl, vlo, vhi, width, rel, units * 2)
        _emit_masked_write(fl, instr, buf, first_byte, units, parts, mask)
        return
    # Sub-byte field: read-modify-write the window (constant shifts).
    # Sub-byte-aligned fields are at most 32 bits in real protocols; they
    # may still span two words.
    if width > 32:
        raise NotImplementedError("sub-byte-aligned fields wider than 32 bits")
    window = [fl.vreg("rmw%d" % i) for i in range(units * 2)]
    fl.emit(Mem("dram", "read", window, buf, Imm(first_byte), units, category=PKT))
    vlo = fl.reg32(instr.value)
    for wi in range(rel // 32, (rel + width - 1) // 32 + 1):
        lo = max(rel, wi * 32)
        hi = min(rel + width, (wi + 1) * 32)
        nbits = hi - lo
        lshift = 32 - (hi - wi * 32)
        clear = (~(((1 << nbits) - 1) << lshift)) & 0xFFFFFFFF
        cleared = fl.vreg()
        fl.emit(Alu("and", cleared, window[wi], fl.materialize(clear)))
        # Field bits [lo-rel, hi-rel) of the value, right-aligned:
        drop = width - (hi - rel)
        part: Operand = vlo
        if drop:
            t = fl.vreg()
            fl.emit(Alu("lshr", t, part, Imm(drop)))
            part = t
        masked = fl.vreg()
        mval = (1 << nbits) - 1
        fl.emit(Alu("and", masked, part,
                    Imm(mval) if mval <= 0xFF else fl.materialize(mval)))
        placed = fl.vreg()
        if lshift:
            fl.emit(Alu("shl", placed, masked, Imm(lshift)))
        else:
            fl.emit(Mov(placed, masked))
        merged = fl.vreg()
        fl.emit(Alu("or", merged, cleared, placed))
        window[wi] = merged
    fl.emit(Mem("dram", "write", window, buf, Imm(first_byte), units, category=PKT))


def _generic_store_body(E, ph, byte_off, f_bit: int, width: int,
                        value_lo, value_hi) -> None:
    """Generic store: byte-aligned byte-multiple fields use a dynamically
    masked write; sub-byte fields do a read-modify-write window."""
    buf = E.vreg("buf")
    head = E.vreg("head")
    E.emit(Mem("sram", "read", [buf, head], ph, Imm(0), 2, category=PKT))
    addr = E.vreg("A")
    E.emit(Alu("add", addr, buf, head))
    if not (isinstance(byte_off, Imm) and byte_off.value == 0):
        t = E.vreg()
        E.emit(Alu("add", t, addr, byte_off))
        addr = t
    base = E.vreg("base")
    t = E.vreg()
    E.emit(Alu("lshr", t, addr, Imm(3)))
    E.emit(Alu("shl", base, t, Imm(3)))
    inoff = E.vreg("inoff")  # byte offset of the field within the window
    E.emit(Alu("and", inoff, addr, Imm(7)))

    if f_bit == 0 and width % 8 == 0:
        # Value words, left-aligned at the stream start (as if inoff==0):
        vw: List[VReg] = []
        if width > 32:
            # Left-align the 64-bit (hi:lo) pair by k = 64 - width bits.
            k = 64 - width
            if k == 0:
                vw = [value_hi, value_lo]
            else:
                w0a = E.vreg()
                E.emit(Alu("shl", w0a, value_hi, Imm(k)))
                w0b = E.vreg()
                E.emit(Alu("lshr", w0b, value_lo, Imm(32 - k)))
                w0 = E.vreg()
                E.emit(Alu("or", w0, w0a, w0b))
                w1 = E.vreg()
                E.emit(Alu("shl", w1, value_lo, Imm(k)))
                vw = [w0, w1]
        elif width < 32:
            va = E.vreg()
            E.emit(Alu("shl", va, value_lo, Imm(32 - width)))
            vw.append(va)
        else:
            vw.append(value_lo)
        _generic_store_stream(E, base, inoff, vw, width // 8)
        return

    # Sub-byte / unaligned-width generic store: full read-modify-write.
    # The field may straddle two words (e.g. a 20-bit MPLS label at a
    # misaligned head), so clear + insert across the selected word pair.
    window = [E.vreg("gsw%d" % i) for i in range(4)]
    E.emit(Mem("dram", "read", window, base, Imm(0), 2, category=PKT))
    bitsh = E.vreg()
    t3 = E.vreg()
    E.emit(Alu("and", t3, inoff, Imm(3)))
    E.emit(Alu("shl", bitsh, t3, Imm(3)))
    bp = E.vreg("bp")
    E.emit(Alu("add", bp, bitsh, Imm(f_bit)))
    woff = E.vreg("woff")
    E.emit(Alu("lshr", woff, inoff, Imm(2)))
    p = _select_words(E, window, woff, 2)
    fmask = ((1 << width) - 1) << (32 - width)
    vpos = E.vreg()
    E.emit(Alu("shl", vpos, value_lo, Imm(32 - width)))
    # Word 0 of the pair: clear (fmask >> bp), insert (vpos >> bp).
    cm0 = E.vreg()
    E.emit(Alu("lshr", cm0, E.materialize(fmask, "fm"), bp))
    inv0 = E.vreg()
    E.emit(Alu("xor", inv0, cm0, E.materialize(0xFFFFFFFF)))
    m0 = E.vreg()
    E.emit(Alu("and", m0, p[0], inv0))
    v0 = E.vreg()
    E.emit(Alu("lshr", v0, vpos, bp))
    new0 = E.vreg("smw0v")
    E.emit(Alu("or", new0, m0, v0))
    # Word 1 of the pair: the spill bits (fmask << (32-bp)); zero at bp==0.
    sh1 = E.vreg()
    E.emit(Alu("sub", sh1, Imm(32), bp))
    cm1 = E.vreg()
    E.emit(Alu("shl", cm1, E.materialize(fmask, "fm1"), sh1))
    v1 = E.vreg()
    E.emit(Alu("shl", v1, vpos, sh1))
    l_nz = E.label("ssz")
    E.emit(Cmp(bp, Imm(0)))
    E.emit(Br("ne", l_nz))
    E.emit(Immed(cm1, 0))
    E.emit(Immed(v1, 0))
    E.new_block(l_nz)
    inv1 = E.vreg()
    E.emit(Alu("xor", inv1, cm1, E.materialize(0xFFFFFFFF)))
    m1 = E.vreg()
    E.emit(Alu("and", m1, p[1], inv1))
    new1 = E.vreg("smw1v")
    E.emit(Alu("or", new1, m1, v1))
    # Place the merged pair back into the window and store both units.
    l0 = E.label("smw0")
    ld = E.label("smwd")
    E.emit(Cmp(woff, Imm(0)))
    E.emit(Br("eq", l0))
    E.emit(Mov(window[1], new0))
    E.emit(Mov(window[2], new1))
    E.emit(Br("always", ld))
    E.new_block(l0)
    E.emit(Mov(window[0], new0))
    E.emit(Mov(window[1], new1))
    E.new_block(ld)
    E.emit(Mem("dram", "write", window, base, Imm(0), 2, category=PKT))


def _generic_store_stream(E, base: VReg, inoff: VReg, stream: List[VReg],
                          nbytes: int) -> None:
    """One dynamically-masked DRAM write of a byte-aligned value stream
    (``nbytes`` <= 16, left-aligned in ``stream``) at window byte offset
    ``inoff`` (0..7) within the 8 B-aligned window at ``base``."""
    assert 1 <= nbytes <= 16
    units = max(2, ((7 + nbytes) + 7) // 8)
    nwords = units * 2
    bitsh = E.vreg("bitsh")
    t2 = E.vreg()
    E.emit(Alu("and", t2, inoff, Imm(3)))
    E.emit(Alu("shl", bitsh, t2, Imm(3)))
    zero = E.materialize(0, "z")
    padded = [zero] + stream + [zero]
    # Shift the stream right by bitsh across word boundaries; this aligns
    # the value to (inoff & 3) within its word.
    out_words: List[VReg] = []
    for k in range(len(stream) + 1):
        out_words.append(_dyn_funnel_right(E, padded[k], padded[k + 1], bitsh))
    # Place the aligned words at window word (inoff >> 2): inoff is 0..7,
    # so placement is a two-way branch.
    woff = E.vreg("woff")
    E.emit(Alu("lshr", woff, inoff, Imm(2)))
    final = [E.vreg("fw%d" % k) for k in range(nwords)]
    l_hi = E.label("place1")
    l_done = E.label("placed")
    padded0 = (out_words + [zero] * nwords)[:nwords]
    padded1 = ([zero] + out_words + [zero] * nwords)[:nwords]
    E.emit(Cmp(woff, Imm(0)))
    E.emit(Br("ne", l_hi))
    for k in range(nwords):
        E.emit(Mov(final[k], padded0[k]))
    E.emit(Br("always", l_done))
    E.new_block(l_hi)
    for k in range(nwords):
        E.emit(Mov(final[k], padded1[k]))
    E.new_block(l_done)
    # Dynamic byte mask: nbytes ones at window bytes [inoff, inoff+nbytes)
    # (mask bit k = transfer byte k, byte 0 = MSB of word 0).
    ones = (1 << nbytes) - 1
    maskv = E.materialize(ones, "bmask") if ones > 0xFF else None
    shifted_mask = E.vreg("bmask")
    E.emit(Alu("shl", shifted_mask, maskv if maskv is not None else Imm(ones),
               inoff))
    E.emit(Mem("dram", "write", final, base, Imm(0), units,
               category=PKT, byte_mask=shifted_mask))


def _dyn_funnel_right(E, w_prev: VReg, w_cur: VReg, shift: VReg) -> VReg:
    """(w_prev << (32-shift)) | (w_cur >> shift), correct for shift==0."""
    lo = E.vreg()
    E.emit(Alu("lshr", lo, w_cur, shift))
    lsh = E.vreg()
    E.emit(Alu("sub", lsh, Imm(32), shift))
    hi = E.vreg()
    E.emit(Alu("shl", hi, w_prev, lsh))
    l_nz = E.label("fr")
    E.emit(Cmp(shift, Imm(0)))
    E.emit(Br("ne", l_nz))
    E.emit(Immed(hi, 0))
    E.new_block(l_nz)
    out = E.vreg()
    E.emit(Alu("or", out, hi, lo))
    return out


def _lower_field_store(fl, instr: I.PktStoreField) -> None:
    if _is_static(fl, instr):
        _static_field_store(fl, instr)
        return
    f_byte = instr.bit_off // 8
    f_bit = instr.bit_off % 8
    width = instr.bit_width
    if width > 32:
        vhi, vlo = fl.pair(instr.value)
    else:
        vhi, vlo = None, fl.reg32(instr.value)
    if fl.ctx.opts.inline:
        byte_op = Imm(f_byte) if f_byte <= 0xFF else fl.materialize(f_byte)
        _generic_store_body(fl, fl.reg32(instr.ph), byte_op, f_bit, width, vlo, vhi)
        fl.meta_memo.clear()
        return
    helper = _field_store_helper(fl.ctx, f_bit, width)
    fl.emit(Mov(abi.ARG_REGS[0], fl.reg32(instr.ph)))
    off = fl.vreg("boff")
    fl.emit(Immed(off, f_byte))
    fl.emit(Mov(abi.ARG_REGS[1], off))
    fl.emit(Mov(abi.ARG_REGS[2], vlo))
    args = [abi.ARG_REGS[0], abi.ARG_REGS[1], abi.ARG_REGS[2]]
    if vhi is not None:
        fl.emit(Mov(abi.ARG_REGS[3], vhi))
        args.append(abi.ARG_REGS[3])
    fl.emit(Bal(helper.entry_label, abi.LINK, arg_regs=args,
                ret_regs=[abi.RET_LO, abi.RET_HI]))
    fl.fn.is_leaf = False
    fl.meta_memo.clear()


def _field_store_helper(ctx, f_bit: int, width: int) -> LIRFunction:
    name = "__pkt_store_f%d_w%d" % (f_bit, width)
    fn = ctx.helpers.get(name)
    if fn is not None:
        return fn
    hb = HelperBuilder(name)
    ph = hb.vreg("ph")
    hb.emit(Mov(ph, abi.ARG_REGS[0]))
    off = hb.vreg("off")
    hb.emit(Mov(off, abi.ARG_REGS[1]))
    vlo = hb.vreg("vlo")
    hb.emit(Mov(vlo, abi.ARG_REGS[2]))
    vhi = None
    if width > 32:
        vhi = hb.vreg("vhi")
        hb.emit(Mov(vhi, abi.ARG_REGS[3]))
    _generic_store_body(hb, ph, off, f_bit, width, vlo, vhi)
    hb.emit(Rtn(abi.LINK))
    ctx.helpers[name] = hb.fn
    return hb.fn


# -- PAC wide accesses ---------------------------------------------------------------


def _lower_wide_load(fl, instr: I.PktLoadWords) -> None:
    width = instr.nwords * 32
    if _is_static(fl, instr):
        abs_bit = instr.c_offset_bits + instr.byte_off * 8
        window, rel = _static_window_read(fl, instr, abs_bit, width)
        for i, dst in enumerate(instr.dsts):
            _extract_const32(fl, window, rel + 32 * i, 32, fl.dst32(dst))
        return
    # Generic wide load: dynamic window + per-word dynamic funnels.
    buf, head = _get_buf_head(fl, instr)
    addr = _generic_addr(fl, buf, head, instr.byte_off)
    base = fl.vreg("base")
    t = fl.vreg()
    fl.emit(Alu("lshr", t, addr, Imm(3)))
    fl.emit(Alu("shl", base, t, Imm(3)))
    units = min(8, instr.nwords // 2 + 2)
    window = [fl.vreg("ww%d" % i) for i in range(units * 2)]
    fl.emit(Mem("dram", "read", window, base, Imm(0), units, category=PKT))
    inoff = fl.vreg("inoff")
    fl.emit(Alu("and", inoff, addr, Imm(7)))
    woff = fl.vreg("woff")
    fl.emit(Alu("lshr", woff, inoff, Imm(2)))
    bitsh = fl.vreg("bitsh")
    t2 = fl.vreg()
    fl.emit(Alu("and", t2, inoff, Imm(3)))
    fl.emit(Alu("shl", bitsh, t2, Imm(3)))
    picks = _select_words(fl, window, woff, instr.nwords + 1)
    for i, dst in enumerate(instr.dsts):
        v = _dyn_funnel(fl, picks[i], picks[i + 1], bitsh)
        fl.emit(Mov(fl.dst32(dst), v))


def _lower_wide_store(fl, instr: I.PktStoreWords) -> None:
    # Word values with per-word byte masks (bit 3 = MSB byte of the word).
    if _is_static(fl, instr):
        abs_bit = instr.c_offset_bits + instr.byte_off * 8 + HEADROOM_BYTES * 8
        first_byte = (abs_bit // 8) & ~7
        units = ((abs_bit // 8 + instr.nwords * 4 - 1) - first_byte) // 8 + 1
        rel = abs_bit - first_byte * 8
        buf = _get_buf(fl, instr)
        parts: List[Tuple[int, object]] = []
        mask = 0
        for i in range(instr.nwords):
            wmask = instr.byte_masks[i]
            if wmask == 0:
                continue
            vreg = fl.reg32(instr.values[i])
            p, _ = _value_parts(fl, vreg, None, 32, rel + 32 * i, units * 2)
            parts.extend(p)
            # Window-byte mask restricted to the bytes this word covers
            # (rel is always a whole number of bytes).
            for b in range(4):
                if wmask & (1 << (3 - b)):
                    mask |= 1 << (rel // 8 + 4 * i + b)
        _emit_masked_write(fl, instr, buf, first_byte, units, parts, mask)
        return
    # Generic wide store: coalesce the covered bytes into maximal runs
    # and emit one dynamically-masked write per <=8-byte run.
    covered: List[Optional[Tuple[int, int]]] = []  # byte -> (word, byte_in_word)
    for i in range(instr.nwords):
        wmask = instr.byte_masks[i]
        for b in range(4):
            covered.append((i, b) if wmask & (1 << (3 - b)) else None)
    runs: List[Tuple[int, int]] = []  # (start_byte, length)
    pos = 0
    while pos < len(covered):
        if covered[pos] is None:
            pos += 1
            continue
        start = pos
        while pos < len(covered) and covered[pos] is not None:
            pos += 1
        length = pos - start
        while length > 16:
            runs.append((start, 16))
            start += 16
            length -= 16
        runs.append((start, length))
    buf, head = _get_buf_head(fl, instr)
    for start, length in runs:
        byte_off = instr.byte_off + start
        addr = _generic_addr(fl, buf, head, byte_off)
        base = fl.vreg("base")
        t = fl.vreg()
        fl.emit(Alu("lshr", t, addr, Imm(3)))
        fl.emit(Alu("shl", base, t, Imm(3)))
        inoff = fl.vreg("inoff")
        fl.emit(Alu("and", inoff, addr, Imm(7)))
        stream = _gather_run_words(fl, instr, start, length)
        _generic_store_stream(fl, base, inoff, stream, length)
    fl.meta_memo.clear()


def _gather_run_words(fl, instr: I.PktStoreWords, start: int,
                      length: int) -> List[VReg]:
    """Assemble ``length`` (<=16) consecutive value bytes starting at word
    byte ``start`` into a left-aligned word stream using constant shifts."""

    def word_at(byte0: int) -> VReg:
        """4 stream bytes starting at ``byte0`` (beyond-end bytes zero)."""
        w0 = byte0 // 4
        off = byte0 % 4
        if off == 0:
            if w0 < instr.nwords:
                return fl.reg32(instr.values[w0])
            return fl.materialize(0, "z")
        hi = fl.vreg()
        fl.emit(Alu("shl", hi, fl.reg32(instr.values[w0]), Imm(off * 8)))
        if w0 + 1 >= instr.nwords:
            return hi
        lo = fl.vreg()
        fl.emit(Alu("lshr", lo, fl.reg32(instr.values[w0 + 1]),
                    Imm(32 - off * 8)))
        out = fl.vreg()
        fl.emit(Alu("or", out, hi, lo))
        return out

    return [word_at(start + 4 * k) for k in range((length + 3) // 4)]


# -- head movement -------------------------------------------------------------------


def _emit_headmove(fl, ph_reg, delta_op) -> VReg:
    """head += delta; len -= delta (one metadata RMW). Returns the new
    head register so callers can re-memoize it."""
    head = fl.vreg("head")
    length = fl.vreg("len")
    fl.emit(Mem("sram", "read", [head, length], ph_reg, Imm(4), 2, category=PKT))
    nh = fl.vreg("head")
    fl.emit(Alu("add", nh, head, delta_op))
    nl = fl.vreg("len")
    fl.emit(Alu("sub", nl, length, delta_op))
    fl.emit(Mem("sram", "write", [nh, nl], ph_reg, Imm(4), 2, category=PKT))
    return nh


def _lower_headmove(fl, instr) -> None:
    ph = fl.reg32(instr.src)
    fl.emit(Mov(fl.dst32(instr.dst), ph))
    if isinstance(instr, I.PktEncap):
        delta = -instr.header_bytes & 0xFFFFFFFF
        new_head = _emit_headmove(fl, ph, fl.materialize(delta, "enc"))
    else:
        if instr.header_bytes is not None:
            d = instr.header_bytes
            new_head = _emit_headmove(fl, ph, Imm(d) if d <= 0xFF
                                      else fl.materialize(d))
        else:
            delta = _emit_demux_eval(fl, instr)
            new_head = _emit_headmove(fl, ph, delta)
    _invalidate_head(fl, instr.src)
    _invalidate_head(fl, instr.dst)
    # The new head is in a register: cache it for subsequent accesses.
    if isinstance(instr.src, Temp):
        fl.meta_memo[_memo_key(fl, instr.src, "head")] = new_head


def _emit_demux_eval(fl, instr: I.PktDecap) -> VReg:
    """Evaluate the source protocol's demux expression against live packet
    fields (a dynamic header size, e.g. ipv4's ``ihl << 2``)."""
    from repro.baker import ast as bast
    from repro.baker.semantic import eval_const_expr

    proto = fl.ctx.mod.protocols[instr.src_proto]

    def lower_expr(expr) -> Union[VReg, Imm]:
        if isinstance(expr, bast.IntLit):
            return Imm(expr.value) if expr.value <= 0xFF else fl.materialize(expr.value)
        if isinstance(expr, bast.Name):
            pf = proto.field_by_name(expr.ident)
            load = I.PktLoadField(
                Temp(-1, pf.value_type), instr.src, proto.name, pf.name,
                pf.offset_bits, pf.width_bits,
            )
            load.c_offset_bits = instr.c_offset_bits
            load.c_alignment = instr.c_alignment
            out = fl.vreg("dmx_%s" % pf.name)
            _lower_field_load_into(fl, load, out)
            return out
        if isinstance(expr, bast.Binary):
            a = lower_expr(expr.left)
            b = lower_expr(expr.right)
            opmap = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or",
                     "^": "xor", "<<": "shl", ">>": "lshr"}
            out = fl.vreg("dmx")
            fl.emit(Alu(opmap[expr.op], out,
                        a if isinstance(a, VReg) else fl.materialize(a.value),
                        b))
            return out
        raise NotImplementedError("demux construct %r" % type(expr).__name__)

    result = lower_expr(proto.demux_expr)
    if isinstance(result, Imm):
        return fl.materialize(result.value)
    return result


def _lower_field_load_into(fl, load: I.PktLoadField, out: VReg) -> None:
    if _is_static(fl, load):
        abs_bit = load.c_offset_bits + load.bit_off
        window, rel = _static_window_read(fl, load, abs_bit, load.bit_width)
        _extract_const32(fl, window, rel, load.bit_width, out)
    else:
        f_byte = load.bit_off // 8
        byte_op = Imm(f_byte) if f_byte <= 0xFF else fl.materialize(f_byte)
        _generic_load_body(fl, fl.reg32(load.ph), byte_op, load.bit_off % 8,
                           load.bit_width, out, None)


# -- adjust / drop / create / copy -----------------------------------------------------


def _lower_adjust(fl, instr: I.PktAdjust) -> None:
    ph = fl.reg32(instr.ph)
    amt = fl.val32(instr.amount)
    if instr.op in ("add_tail", "remove_tail"):
        length = fl.vreg("len")
        _meta_word_read(fl, ph, META_PKT_LEN, length)
        nl = fl.vreg("len")
        fl.emit(Alu("add" if instr.op == "add_tail" else "sub", nl, length, amt))
        _meta_word_write(fl, ph, META_PKT_LEN, nl)
        return
    # extend = move head back; shorten = move head forward.
    if isinstance(amt, Imm):
        if instr.op == "extend":
            delta_op = fl.materialize((-amt.value) & 0xFFFFFFFF)
        else:
            delta_op = amt
    else:
        if instr.op == "extend":
            neg = fl.vreg()
            fl.emit(Alu("sub", neg, Imm(0), amt))
            delta_op = neg
        else:
            delta_op = amt
    _emit_headmove(fl, ph, delta_op)
    _invalidate_head(fl, instr.ph)


def _lower_drop(fl, instr: I.PktDrop) -> None:
    ph = fl.reg32(instr.ph)
    buf = _get_buf(fl, instr)
    fl.emit(RingPut(SymRef("ring.__buf_free"), buf))
    fl.emit(RingPut(SymRef("ring.__meta_free"), ph))


def _lower_create(fl, instr: I.PktCreate) -> None:
    meta = fl.dst32(instr.dst)
    fl.emit(RingGet(meta, SymRef("ring.__meta_free")))
    buf = fl.vreg("nbuf")
    fl.emit(RingGet(buf, SymRef("ring.__buf_free")))
    head = fl.materialize(HEADROOM_BYTES, "nh")
    length = fl.vreg("nlen")
    fl.emit(Alu("add", length, fl.val32(instr.length), Imm(instr.header_bytes)))
    zero = fl.materialize(0, "z")
    meta_words = fl.ctx.mod.meta_words
    regs = [buf, head, length] + [zero] * (meta_words - 3)
    fl.emit(Mem("sram", "write", regs[:8], meta, Imm(0), min(8, meta_words),
                category=PKT))
    # Zero the header + payload area (8 B units).
    _emit_dram_fill_zero(fl, buf, length)
    fl.meta_memo[_memo_key(fl, instr.dst, "buf")] = buf


def _emit_dram_fill_zero(fl, buf: VReg, length: VReg) -> None:
    zero = fl.materialize(0, "z")
    i = fl.vreg("zi")
    fl.emit(Immed(i, 0))
    loop = fl.label("zfill")
    done = fl.label("zfilld")
    fl.new_block(loop)
    fl.emit(Cmp(i, length))
    fl.emit(Br("ge_u", done))
    addr = fl.vreg()
    fl.emit(Alu("add", addr, buf, i))
    addr2 = fl.vreg()
    fl.emit(Alu("add", addr2, addr, Imm(HEADROOM_BYTES)))
    fl.emit(Mem("dram", "write", [zero, zero], addr2, Imm(0), 1, category=PKT))
    fl.emit(Alu("add", i, i, Imm(8)))
    fl.emit(Br("always", loop))
    fl.new_block(done)


def _lower_copy(fl, instr: I.PktCopy) -> None:
    src = fl.reg32(instr.src)
    dst_meta = fl.dst32(instr.dst)
    fl.emit(RingGet(dst_meta, SymRef("ring.__meta_free")))
    new_buf = fl.vreg("cbuf")
    fl.emit(RingGet(new_buf, SymRef("ring.__buf_free")))
    meta_words = min(8, fl.ctx.mod.meta_words)
    window = [fl.vreg("cm%d" % i) for i in range(meta_words)]
    fl.emit(Mem("sram", "read", window, src, Imm(0), meta_words, category=PKT))
    out = [new_buf] + window[1:]
    fl.emit(Mem("sram", "write", out, dst_meta, Imm(0), meta_words, category=PKT))
    # Copy the live data region: head..head+len in 64 B chunks.
    old_buf, head, length = window[0], window[1], window[2]
    i = fl.vreg("ci")
    fl.emit(Immed(i, 0))
    loop = fl.label("copy")
    done = fl.label("copyd")
    fl.new_block(loop)
    fl.emit(Cmp(i, length))
    fl.emit(Br("ge_u", done))
    soff = fl.vreg()
    fl.emit(Alu("add", soff, head, i))
    saddr = fl.vreg()
    fl.emit(Alu("add", saddr, old_buf, soff))
    daddr = fl.vreg()
    fl.emit(Alu("add", daddr, new_buf, soff))
    chunk = [fl.vreg("cw%d" % k) for k in range(16)]
    fl.emit(Mem("dram", "read", chunk, saddr, Imm(0), 8, category=PKT))
    fl.emit(Mem("dram", "write", chunk, daddr, Imm(0), 8, category=PKT))
    fl.emit(Alu("add", i, i, Imm(64)))
    fl.emit(Br("always", loop))
    fl.new_block(done)
    fl.meta_memo[_memo_key(fl, instr.dst, "buf")] = new_buf
