"""Code generator: IR -> CGIR -> ME instructions (regalloc, scheduling,
stack layout, packet lowering, code-store accounting)."""
