"""Stack layout optimization (paper section 5.4).

Baker has no recursion, so every function's frame can be placed
statically. Following the paper:

* frames of functions higher in the call graph claim Local Memory first
  (each thread owns 48 LM words for stack);
* a frame placed while LM space remains goes wholly to LM; once a call
  chain's cumulative frame footprint exceeds the thread's LM budget, the
  overflowing function's frame lives wholly in SRAM -- dramatically
  slower, which is the behavior the stack optimization exists to avoid;
* with the optimization *off* (the paper's initial implementation),
  every frame is rounded up to 16 words to suit offset addressing; the
  optimized layout packs frames exactly (the physical/virtual stack
  pointer split of Figure 12).

This stage also rewrites the ``StackRead``/``StackWrite``
pseudo-instructions into offset-addressed Local Memory accesses or SRAM
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cg import isa
from repro.cg.isa import (
    Alu, Bal, Imm, Insn, LIRFunction, LmRead, LmWrite, Mem, StackRead,
    StackWrite, SymRef, ThreadStackAddr, VReg,
)
from repro.cg.melayout import STACK_WORDS_PER_THREAD

UNOPTIMIZED_FRAME_ALIGN = 16  # words; pre-pSP/vSP minimum frame size


@dataclass
class FramePlacement:
    region: str  # 'lm' | 'sram'
    base_word: int


@dataclass
class StackLayoutResult:
    placements: Dict[str, FramePlacement] = field(default_factory=dict)
    lm_words_used: int = 0
    sram_words_used: int = 0

    @property
    def any_sram_frames(self) -> bool:
        return any(p.region == "sram" for p in self.placements.values())


def _call_edges(fns: Dict[str, LIRFunction]) -> Dict[str, List[str]]:
    by_entry = {fn.entry_label: name for name, fn in fns.items()}
    edges: Dict[str, List[str]] = {name: [] for name in fns}
    for name, fn in fns.items():
        for insn in fn.all_insns():
            if isinstance(insn, Bal):
                callee = by_entry.get(insn.target)
                if callee is not None and callee not in edges[name]:
                    edges[name].append(callee)
    return edges


def layout_frames(fns: Dict[str, LIRFunction], roots: List[str],
                  stack_opt: bool = True) -> StackLayoutResult:
    """Assign every function's frame to LM or SRAM.

    ``roots`` are the dispatch-loop-invoked entry functions (top of the
    call graph). A function called from several places gets the maximum
    base over its callers (its frame must never collide with any live
    caller frame)."""
    edges = _call_edges(fns)
    result = StackLayoutResult()

    def frame_size(fn: LIRFunction) -> int:
        size = max(fn.frame_slots, 0)
        if not stack_opt and size > 0:
            size = ((size + UNOPTIMIZED_FRAME_ALIGN - 1)
                    // UNOPTIMIZED_FRAME_ALIGN) * UNOPTIMIZED_FRAME_ALIGN
        if not stack_opt and size == 0:
            size = UNOPTIMIZED_FRAME_ALIGN  # every call reserves a frame
        return size

    # (lm_floor, sram_floor) reaching each function.
    floors: Dict[str, Tuple[int, int]] = {}

    def visit(name: str, lm_floor: int, sram_floor: int) -> None:
        prev = floors.get(name)
        merged = (
            max(prev[0], lm_floor) if prev else lm_floor,
            max(prev[1], sram_floor) if prev else sram_floor,
        )
        if prev == merged and prev is not None:
            return
        floors[name] = merged
        fn = fns[name]
        size = frame_size(fn)
        lm_f, sram_f = merged
        if lm_f + size <= STACK_WORDS_PER_THREAD:
            result.placements[name] = FramePlacement("lm", lm_f)
            next_lm, next_sram = lm_f + size, sram_f
            result.lm_words_used = max(result.lm_words_used, lm_f + size)
        else:
            result.placements[name] = FramePlacement("sram", sram_f)
            next_lm, next_sram = lm_f, sram_f + size
            result.sram_words_used = max(result.sram_words_used, sram_f + size)
        for callee in edges.get(name, ()):
            visit(callee, next_lm, next_sram)

    for root in roots:
        if root in fns:
            visit(root, 0, 0)
    # Unreached functions (dead helpers) still get a placement.
    for name in fns:
        if name not in result.placements:
            visit(name, 0, 0)
    return result


def resolve_stack_accesses(fns: Dict[str, LIRFunction],
                           layout: StackLayoutResult) -> None:
    """Rewrite StackRead/StackWrite into LM or SRAM operations."""
    for name, fn in fns.items():
        placement = layout.placements[name]
        for bb in fn.blocks:
            out: List[Insn] = []
            for insn in bb.insns:
                if isinstance(insn, (StackRead, StackWrite)):
                    _resolve_one(out, insn, placement)
                else:
                    out.append(insn)
            bb.insns = out


def _resolve_one(out: List[Insn], insn, placement: FramePlacement) -> None:
    word = placement.base_word + insn.slot
    if placement.region == "lm":
        if isinstance(insn, StackRead):
            out.append(LmRead(insn.dst, insn.index, word, thread_rel=True))
        else:
            out.append(LmWrite(insn.index, word, insn.src, thread_rel=True))
        return
    # SRAM overflow frame: address = thread stack base + word*4 (+ index*4).
    # Runs post-register-allocation, so only the reserved fixup registers
    # may be minted here (each sequence is self-contained).
    from repro.cg import abi

    base = abi.FIXUP_A
    out.append(ThreadStackAddr(base))
    if insn.index is not None:
        scaled = abi.FIXUP_B
        out.append(Alu("shl", scaled, insn.index, Imm(2)))
        out.append(Alu("add", base, base, scaled))
    addr = base
    if isinstance(insn, StackRead):
        out.append(Mem("sram", "read", [insn.dst], addr, Imm(word * 4), 1,
                       category=isa.CAT_APP))
    else:
        src = insn.src
        if isinstance(src, Imm):
            out.append(isa.Immed(abi.FIXUP_B, src.value))
            src = abi.FIXUP_B
        out.append(Mem("sram", "write", [src], addr, Imm(word * 4), 1,
                       category=isa.CAT_APP))
