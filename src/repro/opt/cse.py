"""Common subexpression / redundancy elimination (local value numbering).

Per-block value numbering over arithmetic, comparisons, global/local
loads, packet field loads and metadata loads. Memory-dependent values are
versioned so that stores, calls, lock operations and packet mutations
invalidate exactly what they may affect:

* a ``StoreG`` bumps the version of that one global;
* a call / lock op bumps every version (calls may store anywhere);
* packet-mutating instructions bump the packet version (all packet
  loads are invalidated -- handle aliasing is possible after copies).

This pass is the paper's "redundancy elimination" at -O1; it is what
removes the duplicated application SRAM accesses visible in Table 1
between BASE and -O1.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.values import Const, Operand, Temp


def run(fn: IRFunction) -> bool:
    changed = False
    for bb in fn.blocks:
        vn: Dict[Temp, int] = {}
        next_vn = [0]
        mem_version: Dict[str, int] = {}
        pkt_version = [0]
        table: Dict[Tuple, Temp] = {}

        def number(op: Operand):
            if isinstance(op, Const):
                return ("c", op.value)
            if op not in vn:
                vn[op] = next_vn[0]
                next_vn[0] += 1
            return ("t", vn[op])

        def invalidate_result(t: Temp) -> None:
            for key in [k for k, v in table.items() if v is t]:
                table.pop(key)

        def bump_all() -> None:
            for g in list(mem_version):
                mem_version[g] += 1
            pkt_version[0] += 1
            # Any still-cached memory keys are stale now:
            for key in [k for k in table if k[0] in ("lg", "ll", "pf", "pw", "ml", "pl")]:
                table.pop(key)

        new_instrs = []
        for instr in bb.instrs:
            key = None
            if isinstance(instr, I.BinOp):
                a, b = number(instr.a), number(instr.b)
                if instr.op in ("add", "mul", "and", "or", "xor") and b < a:
                    a, b = b, a  # commutative canonical order
                key = ("bin", instr.op, a, b, str(instr.dst.type))
            elif isinstance(instr, I.Cmp):
                key = ("cmp", instr.op, number(instr.a), number(instr.b))
            elif isinstance(instr, I.LoadG):
                ver = mem_version.setdefault(instr.g, 0)
                key = ("lg", instr.g, number(instr.offset), instr.width, ver)
            elif isinstance(instr, I.LoadL):
                ver = mem_version.setdefault("@" + instr.array, 0)
                key = ("ll", instr.array, number(instr.offset), instr.width, ver)
            elif isinstance(instr, I.PktLoadField):
                key = ("pf", number(instr.ph), instr.proto, instr.field,
                       instr.bit_off, pkt_version[0])
            elif isinstance(instr, I.MetaLoad):
                key = ("ml", number(instr.ph), instr.word, pkt_version[0])
            elif isinstance(instr, I.PktLength):
                key = ("pl", number(instr.ph), pkt_version[0])

            if key is not None and key in table:
                prev = table[key]
                dst = instr.defs()[0]
                replacement = I.Assign(dst, prev)
                replacement.copy_annotations_from(instr)
                new_instrs.append(replacement)
                changed = True
                # dst gets the same value number as prev.
                invalidate_result(dst)
                vn[dst] = _fresh(vn, next_vn, prev)
                continue

            new_instrs.append(instr)

            # Effects: invalidate what this instruction may change.
            if isinstance(instr, I.StoreG):
                mem_version[instr.g] = mem_version.get(instr.g, 0) + 1
                for k in [k for k in table if k[0] == "lg" and k[1] == instr.g]:
                    table.pop(k)
            elif isinstance(instr, I.StoreL):
                name = "@" + instr.array
                mem_version[name] = mem_version.get(name, 0) + 1
                for k in [k for k in table if k[0] == "ll" and k[1] == instr.array]:
                    table.pop(k)
            elif isinstance(instr, (I.Call, I.LockAcquire, I.LockRelease)):
                bump_all()
            elif isinstance(instr, (I.PktStoreField, I.PktStoreWords, I.MetaStore,
                                    I.PktEncap, I.PktDecap, I.PktAdjust,
                                    I.ChanPut, I.PktDrop, I.PktCreate, I.PktCopy)):
                pkt_version[0] += 1
                for k in [k for k in table if k[0] in ("pf", "pw", "ml", "pl")]:
                    table.pop(k)

            # New definitions: fresh value numbers; record computed keys.
            for d in instr.defs():
                invalidate_result(d)
                vn[d] = next_vn[0]
                next_vn[0] += 1
            if key is not None:
                table[key] = instr.defs()[0]
        bb.instrs = new_instrs
    return changed


def _fresh(vn: Dict[Temp, int], next_vn, t: Temp) -> int:
    if t not in vn:
        vn[t] = next_vn[0]
        next_vn[0] += 1
    return vn[t]
