"""Dead code elimination.

Removes side-effect-free instructions whose results are never used
(including loads, which are idempotent in Baker's memory model), plus
empty self-assignments. Iterates to fixpoint since removing one dead
instruction can kill the operands feeding it.
"""

from __future__ import annotations

from collections import Counter

from repro.ir.module import IRFunction
from repro.ir.values import Temp


def run(fn: IRFunction) -> bool:
    changed_any = False
    while True:
        use_counts: Counter = Counter()
        for instr in fn.all_instrs():
            for u in instr.uses():
                if isinstance(u, Temp):
                    use_counts[u] += 1
        changed = False
        for bb in fn.blocks:
            kept = []
            for instr in bb.instrs:
                defs = instr.defs()
                removable = (
                    not instr.side_effects
                    and defs
                    and all(use_counts[d] == 0 for d in defs)
                )
                if removable:
                    changed = True
                else:
                    kept.append(instr)
            bb.instrs = kept
        changed_any = changed_any or changed
        if not changed:
            return changed_any
