"""SWC: delayed-update software-controlled caching (paper section 5.2).

The IXP MEs have no hardware caches, but each ME has a 16-entry CAM and
640 words of Local Memory. SWC turns hot, rarely-written global loads
into CAM-tagged Local Memory hits:

* **Candidate selection** uses functional-profiler statistics: a global
  qualifies when it is read frequently on the packet path, written
  rarely (control/init path only), small-grained enough to cache
  (power-of-two line size <= the line budget), never accessed inside a
  critical section, and its observed load stream would hit well in 16
  lines.
* **Delayed-update coherency**: writers set a per-global ``updated``
  flag; the packet path checks the flag only every *i*-th packet
  (Equation 2 gives the minimum check rate from the tolerable packet
  error rate) and clears the whole CAM when it fires. Between checks,
  cached entries may be stale -- acceptable in error-tolerant packet
  applications, the paper's central observation.

The load-path rewrite (paper Figure 8)::

    count++                       (Local Memory)
    if count > check_limit:
        count = 0
        if updated_flag:          (one Scratch read per period)
            cam_clear; updated_flag = 0
    r = cam_lookup(key)
    if hit:  value = LM[line(r) + word]
    else:    value = SRAM load; cam_write; LM fill
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baker import types as T
from repro.baker.symbols import GlobalSymbol, SymbolKind
from repro.ir import instructions as I
from repro.ir.module import BasicBlock, IRFunction, IRModule
from repro.ir.values import Const, Operand, Temp
from repro.obs import ledger as obs_ledger
from repro.profiler.stats import ProfileData

# Local Memory layout of the SWC region (word indices are relative to the
# region; the code generator places the region after the stack area).
COUNTER_INDEX = 0
CACHE_BASE = 1
CAM_ENTRIES = 16
MAX_LINE_WORDS = 8  # 16 lines x 8 words = 128 words + counter
# The CAM is shared by every cached global, so line slots use a uniform
# stride: entry E always owns LM words [CACHE_BASE + 8E, CACHE_BASE + 8E+8).
LINE_STRIDE_WORDS = MAX_LINE_WORDS

# Test-only fault injection (tests/test_analyze_mutations.py): when set
# to "wrong_slot", the hit path reads one LM word past the true cache
# slot -- a deliberately broken rewrite the translation validator must
# catch. Never set outside tests.
_TEST_MUTATION = None

# Selection thresholds.
MIN_LOADS_PER_PACKET = 0.4
MAX_STORE_LOAD_RATIO = 0.01
MIN_HIT_RATE = 0.70
# Fraction of a structure's loads its hot lines must cover when sizing
# its claim on the shared 16-entry CAM.
WORKING_SET_FRACTION = 0.8
# The paper's tolerable packet error rate (section 5.2): Equation 2
# derives the minimum per-packet update-check rate from it. Every
# accepted candidate's minimum must be satisfiable by the configured
# check period -- enforced at compile time by enforce_check_period.
TOLERABLE_ERROR_RATE = 0.01


@dataclass
class CacheSpec:
    """One cached global: key space and line geometry."""

    name: str
    gid: int  # key tag
    line_bytes: int  # power of two
    line_words: int
    flag_global: str  # name of the updated-flag global


@dataclass
class SwcResult:
    cached: List[CacheSpec] = field(default_factory=list)
    rejected: Dict[str, str] = field(default_factory=dict)  # name -> reason
    rewritten_loads: int = 0
    instrumented_stores: int = 0
    #: Largest Equation-2 minimum check rate over the accepted
    #: candidates (0.0 when none store during the profile). The
    #: configured check period must keep 1/period >= this.
    eq2_min_check_rate: float = 0.0
    #: Check period the user/tuner configured, and the period actually
    #: compiled in after Equation-2 enforcement (None until
    #: enforce_check_period runs or when nothing is cached).
    requested_check_period: Optional[int] = None
    check_period: Optional[int] = None
    #: Per-candidate numeric evidence (accepted candidates only):
    #: name -> {loads_per_packet, stores_per_packet, hit_rate at the
    #: CAM capacity the structure actually competed for,
    #: working_set_lines, eq2_min_check_rate}. The autotuner's pruner
    #: reads this instead of trusting stale full-CAM estimates.
    evidence: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def cached_names(self) -> List[str]:
        return [c.name for c in self.cached]


def min_check_rate(r_error: float, r_store: float, r_load: float) -> float:
    """Equation 2: minimum per-packet update-check rate."""
    if r_error <= 0:
        raise ValueError("tolerable error rate must be positive")
    return r_store * r_load / r_error


def _line_geometry(sym: GlobalSymbol) -> Optional[Tuple[int, int]]:
    """(line_bytes, line_words) for a global, or None if uncacheable.
    The line is one array element (the whole value for scalars). The
    element stride must be a power of two so the line index is a shift
    of the byte offset (the ME has no divide instruction)."""
    gtype = sym.type
    elem = gtype.element if isinstance(gtype, T.ArrayType) else gtype
    size = elem.size_bytes()
    if size & (size - 1) != 0:
        return None
    if size > MAX_LINE_WORDS * 4:
        return None
    return size, size // 4


def select_candidates(mod: IRModule, profile: ProfileData,
                      fast_functions: Set[str],
                      exclude: Sequence[str] = ()) -> SwcResult:
    """Choose globals to cache. ``fast_functions`` are the ME-mapped
    aggregate functions (loads elsewhere are control path). ``exclude``
    names globals never considered (the ``swc_exclude`` option: the
    autotuner searches over candidate sets with it)."""
    result = SwcResult()
    packets = max(profile.packets_in, 1)
    led = obs_ledger.get_ledger()
    excluded = set(exclude)

    def _reject(name, reason, **evidence):
        result.rejected[name] = reason
        led.record("swc", name, "rejected", reason=reason, **evidence)

    in_critical = _globals_in_critical_sections(mod)
    fast_loaded = _globals_loaded_in(mod, fast_functions)
    fast_stored = _globals_stored_in(mod, fast_functions)

    screened = []  # (loads_per_packet, name, sym, line_bytes, line_words, stats)
    for name, sym in sorted(mod.globals.items()):
        if name.endswith(".__swc_flag"):
            continue
        if name in excluded:
            _reject(name, "excluded by options (swc_exclude)")
            continue
        stats = profile.global_stats.get(name)
        if stats is None or name not in fast_loaded:
            _reject(name, "not read on the packet path")
            continue
        if name in in_critical:
            _reject(name, "accessed inside a critical section")
            continue
        if name in fast_stored:
            _reject(name, "written on the packet path",
                    loads=stats.loads, stores=stats.stores)
            continue
        loads_per_packet = stats.loads / packets
        if loads_per_packet < MIN_LOADS_PER_PACKET:
            _reject(name, "too few loads/packet (%.2f)" % loads_per_packet,
                    loads_per_packet=loads_per_packet,
                    min_loads_per_packet=MIN_LOADS_PER_PACKET)
            continue
        if stats.loads and stats.stores / stats.loads > MAX_STORE_LOAD_RATIO:
            _reject(name, "written too often (%d stores / %d loads)" % (
                        stats.stores, stats.loads),
                    loads=stats.loads, stores=stats.stores,
                    max_store_load_ratio=MAX_STORE_LOAD_RATIO)
            continue
        geometry = _line_geometry(sym)
        if geometry is None:
            _reject(name, "element too large for a cache line")
            continue
        line_bytes, line_words = geometry
        hit = stats.estimated_hit_rate(CAM_ENTRIES, line_words)
        if hit < MIN_HIT_RATE:
            _reject(name, "estimated hit rate too low (%.2f)" % hit,
                    hit_rate=hit, min_hit_rate=MIN_HIT_RATE,
                    loads_per_packet=loads_per_packet)
            continue
        screened.append((loads_per_packet, name, sym, line_bytes, line_words, stats))

    # The 16 CAM entries are shared by every cached structure: admit the
    # hottest candidates while their working sets fit, so a structure
    # whose hot lines alone overflow the CAM (e.g. a scanned firewall
    # rule list) is never cached.
    screened.sort(key=lambda row: (-row[0], row[1]))
    capacity = CAM_ENTRIES
    gid = 1
    for loads_per_packet, name, sym, line_bytes, line_words, stats in screened:
        ws = stats.working_set_lines(WORKING_SET_FRACTION, line_words)
        if ws > CAM_ENTRIES // 2:
            # Suitable candidates are *small* structures; one that needs
            # most of the CAM to itself would thrash everything else.
            _reject(name, "working set too large (%d lines)" % ws,
                    working_set_lines=ws, cam_entries=CAM_ENTRIES)
            continue
        if ws > capacity:
            _reject(name,
                    "working set (%d lines) exceeds remaining CAM capacity (%d)"
                    % (ws, capacity),
                    working_set_lines=ws, cam_capacity_left=capacity)
            continue
        stores_per_packet = stats.stores / packets
        eq2 = min_check_rate(TOLERABLE_ERROR_RATE, stores_per_packet,
                             loads_per_packet)
        if eq2 > 1.0:
            # Equation 2 demands more than one check per packet: no
            # integer period can satisfy the 1% error bound, so the
            # candidate is uncacheable outright.
            _reject(name,
                    "Equation 2 unsatisfiable (min check rate %.3f > 1/pkt)"
                    % eq2,
                    eq2_min_check_rate=eq2,
                    stores_per_packet=stores_per_packet,
                    loads_per_packet=loads_per_packet,
                    tolerable_error_rate=TOLERABLE_ERROR_RATE)
            continue
        # Hit rate at the CAM capacity this structure actually competes
        # for -- earlier admissions shrank it, so the full-CAM estimate
        # from screening would be stale evidence.
        hit_rate = stats.estimated_hit_rate(min(capacity, CAM_ENTRIES),
                                            line_words)
        capacity -= ws
        result.cached.append(
            CacheSpec(name, gid, line_bytes, line_words, name + ".__swc_flag")
        )
        result.eq2_min_check_rate = max(result.eq2_min_check_rate, eq2)
        result.evidence[name] = {
            "loads_per_packet": loads_per_packet,
            "stores_per_packet": stores_per_packet,
            "hit_rate": hit_rate,
            "cam_capacity": float(capacity + ws),
            "working_set_lines": float(ws),
            "eq2_min_check_rate": eq2,
        }
        if led.enabled:
            # Equation 2 evidence at the paper's 1% tolerable error rate.
            led.record(
                "swc", name, "accepted",
                reason="hot, rarely written, working set fits the CAM",
                gid=gid, line_bytes=line_bytes,
                loads_per_packet=loads_per_packet,
                stores_per_packet=stores_per_packet,
                hit_rate=hit_rate,
                cam_capacity=capacity + ws,
                working_set_lines=ws,
                eq2_min_check_rate=eq2)
        gid += 1
    return result


def enforce_check_period(result: SwcResult, requested: int) -> int:
    """Clamp the configured check period so the implied check rate
    (1/period) never falls below the Equation-2 minimum of any accepted
    candidate. Returns the effective period and records a ledger
    decision when the clamp fires. Before this existed, a tuned (or
    hand-set) period silently violated the paper's 1% bound."""
    result.requested_check_period = requested
    effective = max(1, int(requested))
    if result.cached and result.eq2_min_check_rate > 0.0:
        max_period = max(1, int(1.0 / result.eq2_min_check_rate))
        if effective > max_period:
            led = obs_ledger.get_ledger()
            led.record(
                "swc", "check_period", "clamped",
                reason="requested period %d implies check rate %.4g below "
                       "Equation-2 minimum %.4g" % (
                           effective, 1.0 / effective,
                           result.eq2_min_check_rate),
                requested_period=effective,
                effective_period=max_period,
                eq2_min_check_rate=result.eq2_min_check_rate,
                implied_check_rate=1.0 / effective,
                tolerable_error_rate=TOLERABLE_ERROR_RATE)
            effective = max_period
    result.check_period = effective if result.cached else None
    return effective


def _globals_in_critical_sections(mod: IRModule) -> Set[str]:
    names: Set[str] = set()
    for fn in mod.functions.values():
        for bb in fn.blocks:
            depth = 0
            for instr in bb.all_instrs():
                if isinstance(instr, I.LockAcquire):
                    depth += 1
                elif isinstance(instr, I.LockRelease):
                    depth = max(0, depth - 1)
                elif depth > 0 and isinstance(instr, (I.LoadG, I.StoreG)):
                    names.add(instr.g)
    return names


def _globals_loaded_in(mod: IRModule, functions: Set[str]) -> Set[str]:
    names: Set[str] = set()
    for fname in functions:
        fn = mod.functions.get(fname)
        if fn is None:
            continue
        for instr in fn.all_instrs():
            if isinstance(instr, I.LoadG):
                names.add(instr.g)
    return names


def _globals_stored_in(mod: IRModule, functions: Set[str]) -> Set[str]:
    names: Set[str] = set()
    for fname in functions:
        fn = mod.functions.get(fname)
        if fn is None:
            continue
        for instr in fn.all_instrs():
            if isinstance(instr, I.StoreG):
                names.add(instr.g)
    return names


# -- transformation -------------------------------------------------------------------


def apply(mod: IRModule, result: SwcResult, fast_functions: Set[str],
          check_period: int = 16) -> None:
    """Rewrite fast-path loads of every selected global and instrument
    all stores with the updated-flag write."""
    if not result.cached:
        return
    specs = {c.name: c for c in result.cached}

    # Materialize the flag globals (Scratch: cheap periodic check).
    for spec in result.cached:
        if spec.flag_global not in mod.globals:
            mod.globals[spec.flag_global] = GlobalSymbol(
                SymbolKind.GLOBAL,
                spec.flag_global,
                type=T.U32,
                qualified=spec.flag_global,
                init_values=[0],
                memory="scratch",
            )

    for fname in sorted(fast_functions):
        fn = mod.functions.get(fname)
        if fn is None:
            continue
        if any(
            isinstance(i, I.LoadG) and i.g in specs for i in fn.all_instrs()
        ):
            _insert_periodic_check(fn, result.cached, check_period)
            _rewrite_loads(fn, specs, result)

    # Every store anywhere (control plane, init, other aggregates) must
    # raise the flag.
    for fn in mod.functions.values():
        for bb in fn.blocks:
            new_instrs: List[I.Instr] = []
            for instr in bb.instrs:
                new_instrs.append(instr)
                if isinstance(instr, I.StoreG) and instr.g in specs:
                    spec = specs[instr.g]
                    new_instrs.append(
                        I.StoreG(spec.flag_global, Const(0), Const(1), 4)
                    )
                    result.instrumented_stores += 1
            bb.instrs = new_instrs


def _insert_periodic_check(fn: IRFunction, cached: List[CacheSpec],
                           check_period: int) -> None:
    """Prepend the every-i-th-packet coherency check to the function."""
    old_entry_instrs = fn.entry.instrs
    old_terminator = fn.entry.terminator

    body = fn.new_block("swc_body")
    body.instrs = old_entry_instrs
    body.terminator = old_terminator

    check = fn.new_block("swc_check")
    entry = fn.entry
    entry.instrs = []
    entry.terminator = None

    count = fn.new_temp(T.U32, "swc_count")
    entry.append(I.LmLoad(count, Const(COUNTER_INDEX)))
    bumped = fn.new_temp(T.U32)
    entry.append(I.BinOp("add", bumped, count, Const(1)))
    entry.append(I.LmStore(Const(COUNTER_INDEX), bumped))
    over = fn.new_temp(T.BOOL)
    entry.append(I.Cmp("gt_u", over, bumped, Const(check_period)))
    entry.terminate(I.Branch(over, check, body))

    check.append(I.LmStore(Const(COUNTER_INDEX), Const(0)))
    acc: Optional[Temp] = None
    for spec in cached:
        flag = fn.new_temp(T.U32, "swc_flag")
        check.append(I.LoadG(flag, spec.flag_global, Const(0), 4))
        if acc is None:
            acc = flag
        else:
            merged = fn.new_temp(T.U32)
            check.append(I.BinOp("or", merged, acc, flag))
            acc = merged
    any_set = fn.new_temp(T.BOOL)
    check.append(I.Cmp("ne", any_set, acc, Const(0)))
    flush = fn.new_block("swc_flush")
    check.terminate(I.Branch(any_set, flush, body))
    flush.append(I.CamClear())
    for spec in cached:
        flush.append(I.StoreG(spec.flag_global, Const(0), Const(0), 4))
    flush.terminate(I.Jump(body))


def _rewrite_loads(fn: IRFunction, specs: Dict[str, CacheSpec],
                   result: SwcResult) -> None:
    while True:
        target = None
        for bb in fn.blocks:
            for idx, instr in enumerate(bb.instrs):
                if (isinstance(instr, I.LoadG) and instr.g in specs
                        and not getattr(instr, "_swc_done", False)):
                    target = (bb, idx, instr)
                    break
            if target:
                break
        if target is None:
            return
        bb, idx, instr = target
        _rewrite_one_load(fn, bb, idx, instr, specs[instr.g], result)


def _rewrite_one_load(fn: IRFunction, bb: BasicBlock, idx: int,
                      load: I.LoadG, spec: CacheSpec, result: SwcResult) -> None:
    """Split the block around the load and emit hit/miss paths. The miss
    path fills the *entire* line, installs the CAM tag, then joins the
    hit path, which reads the requested word(s) from Local Memory."""
    load._swc_done = True  # type: ignore[attr-defined]
    tail = fn.new_block("swc_tail")
    tail.instrs = bb.instrs[idx + 1 :]
    tail.terminator = bb.terminator
    bb.instrs = bb.instrs[:idx]
    bb.terminator = None

    line_shift = spec.line_bytes.bit_length() - 1

    # key = (gid << 24) | (offset >> line_shift)
    line_idx = fn.new_temp(T.U32, "swc_line")
    bb.append(I.BinOp("lshr", line_idx, load.offset, Const(line_shift)))
    key = fn.new_temp(T.U32, "swc_key")
    bb.append(I.BinOp("or", key, line_idx, Const(spec.gid << 24)))

    lookup = fn.new_temp(T.U32, "swc_cam")
    bb.append(I.CamLookup(lookup, key))
    entry = fn.new_temp(T.U32, "swc_entry")
    bb.append(I.BinOp("lshr", entry, lookup, Const(1)))
    hit_word = fn.new_temp(T.U32)
    bb.append(I.BinOp("and", hit_word, lookup, Const(1)))
    hit = fn.new_temp(T.BOOL, "swc_hit")
    bb.append(I.Cmp("ne", hit, hit_word, Const(0)))

    # line base slot in Local Memory = CACHE_BASE + entry * LINE_STRIDE
    scaled = fn.new_temp(T.U32)
    bb.append(I.BinOp("shl", scaled, entry,
                      Const(LINE_STRIDE_WORDS.bit_length() - 1)))
    line_base = fn.new_temp(T.U32, "swc_base")
    bb.append(I.BinOp("add", line_base, scaled, Const(CACHE_BASE)))

    hit_bb = fn.new_block("swc_hit")
    miss_bb = fn.new_block("swc_miss")
    bb.terminate(I.Branch(hit, hit_bb, miss_bb))

    # Miss path: fill the whole line from SRAM, install tag, join hit path.
    line_off = fn.new_temp(T.U32, "swc_loff")
    miss_bb.append(I.BinOp("and", line_off, load.offset,
                           Const((~(spec.line_bytes - 1)) & 0xFFFFFFFF)))
    word = 0
    while word < spec.line_words:
        chunk_off = fn.new_temp(T.U32)
        miss_bb.append(I.BinOp("add", chunk_off, line_off, Const(word * 4)))
        slot = fn.new_temp(T.U32)
        miss_bb.append(I.BinOp("add", slot, line_base, Const(word)))
        if spec.line_words - word >= 2:
            v64 = fn.new_temp(T.U64)
            fill = I.LoadG(v64, load.g, chunk_off, 8)
            fill._swc_done = True  # type: ignore[attr-defined]
            miss_bb.append(fill)
            hi64 = fn.new_temp(T.U64)
            miss_bb.append(I.BinOp("lshr", hi64, v64, Const(32)))
            hi = fn.new_temp(T.U32)
            miss_bb.append(I.BinOp("and", hi, hi64, Const(0xFFFFFFFF, T.U64)))
            lo = fn.new_temp(T.U32)
            miss_bb.append(I.BinOp("and", lo, v64, Const(0xFFFFFFFF, T.U64)))
            miss_bb.append(I.LmStore(slot, hi))
            slot2 = fn.new_temp(T.U32)
            miss_bb.append(I.BinOp("add", slot2, line_base, Const(word + 1)))
            miss_bb.append(I.LmStore(slot2, lo))
            word += 2
        else:
            v32 = fn.new_temp(T.U32)
            fill = I.LoadG(v32, load.g, chunk_off, 4)
            fill._swc_done = True  # type: ignore[attr-defined]
            miss_bb.append(fill)
            miss_bb.append(I.LmStore(slot, v32))
            word += 1
    miss_bb.append(I.CamWrite(entry, key))
    miss_bb.terminate(I.Jump(hit_bb))

    # Hit path (also the miss join): read the requested word(s) from LM.
    within = fn.new_temp(T.U32)
    hit_bb.append(I.BinOp("and", within, load.offset, Const(spec.line_bytes - 1)))
    within_words = fn.new_temp(T.U32)
    hit_bb.append(I.BinOp("lshr", within_words, within, Const(2)))
    if _TEST_MUTATION == "wrong_slot":
        skewed = fn.new_temp(T.U32)
        hit_bb.append(I.BinOp("add", skewed, within_words, Const(1)))
        within_words = skewed
    slot_h = fn.new_temp(T.U32)
    hit_bb.append(I.BinOp("add", slot_h, line_base, within_words))
    if load.width == 8:
        hi = fn.new_temp(T.U32)
        lo = fn.new_temp(T.U32)
        hit_bb.append(I.LmLoad(hi, slot_h))
        slot_h2 = fn.new_temp(T.U32)
        hit_bb.append(I.BinOp("add", slot_h2, slot_h, Const(1)))
        hit_bb.append(I.LmLoad(lo, slot_h2))
        wide = fn.new_temp(T.U64)
        hit_bb.append(I.BinOp("shl", wide, hi, Const(32)))
        hit_bb.append(I.BinOp("or", load.dst, wide, lo))
    else:
        hit_bb.append(I.LmLoad(load.dst, slot_h))
    hit_bb.terminate(I.Jump(tail))

    result.rewritten_loads += 1
