"""Constant folding and propagation.

Works on the non-SSA IR using the single-definition property: a temp
defined exactly once by a constant is a constant everywhere (uses are
always dominated by the definition in lowered code). Folding uses the
same arithmetic as the interpreter (:mod:`repro.ir.eval`), so it can
never change observable behavior.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.baker import types as T
from repro.ir import instructions as I
from repro.ir.eval import EvalError, eval_binop, eval_cmp
from repro.ir.module import IRFunction
from repro.ir.values import Const, Operand, Temp


def _bits_of(type_: T.Type) -> int:
    if isinstance(type_, T.IntType):
        return type_.bits
    if type_.is_bool:
        return 1
    return 32


def _fold(instr: I.Instr) -> Optional[Const]:
    """Fold a BinOp/Cmp/Assign with all-constant operands."""
    if isinstance(instr, I.BinOp) and isinstance(instr.a, Const) and isinstance(instr.b, Const):
        try:
            value = eval_binop(instr.op, instr.a.value, instr.b.value, _bits_of(instr.dst.type))
        except EvalError:
            return None  # preserve runtime division-by-zero
        return Const(value, instr.dst.type)
    if isinstance(instr, I.Cmp) and isinstance(instr.a, Const) and isinstance(instr.b, Const):
        bits = max(_bits_of(instr.a.type), _bits_of(instr.b.type))
        return Const(eval_cmp(instr.op, instr.a.value, instr.b.value, bits), T.BOOL)
    return None


def _simplify_algebraic(instr: I.BinOp) -> Optional[Operand]:
    """x+0, x-0, x*1, x*0, x&0, x|0, x^0, x<<0, x>>0 -> simpler operand."""
    a, b, op = instr.a, instr.b, instr.op
    if isinstance(b, Const):
        v = b.value
        if v == 0 and op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
            return a
        if v == 0 and op in ("mul", "and"):
            return Const(0, instr.dst.type)
        if v == 1 and op in ("mul", "div_u", "div_s"):
            return a
    if isinstance(a, Const):
        v = a.value
        if v == 0 and op in ("add", "or", "xor"):
            return b
        if v == 0 and op in ("mul", "and"):
            return Const(0, instr.dst.type)
        if v == 1 and op == "mul":
            return b
    return None


def run(fn: IRFunction) -> bool:
    changed_any = False
    while True:
        changed = False

        # 1. Fold instructions with constant operands; simplify identities.
        for bb in fn.blocks:
            for idx, instr in enumerate(bb.instrs):
                folded = _fold(instr)
                if folded is not None:
                    bb.instrs[idx] = _retag(I.Assign(instr.dst, folded), instr)
                    changed = True
                    continue
                if isinstance(instr, I.BinOp):
                    simpler = _simplify_algebraic(instr)
                    if simpler is not None:
                        bb.instrs[idx] = _retag(I.Assign(instr.dst, simpler), instr)
                        changed = True

        # 2. Propagate single-def constant temps into their uses.
        def_counts: Counter = Counter()
        const_defs: Dict[Temp, Const] = {}
        for instr in fn.all_instrs():
            for d in instr.defs():
                def_counts[d] += 1
        for instr in fn.all_instrs():
            if isinstance(instr, I.Assign) and isinstance(instr.src, Const):
                if def_counts[instr.dst] == 1:
                    const_defs[instr.dst] = instr.src
        for p in fn.params:
            const_defs.pop(p, None)
        if const_defs:
            replaced = False
            for instr in fn.all_instrs():
                before = instr.uses()
                instr.replace_uses(dict(const_defs))
                if instr.uses() != before:
                    replaced = True
            changed = changed or replaced

        changed_any = changed_any or changed
        if not changed:
            return changed_any


def _retag(new: I.Instr, old: I.Instr) -> I.Instr:
    new.copy_annotations_from(old)
    return new
