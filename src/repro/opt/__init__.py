"""Optimization passes: scalar (-O1/-O2) and packet-specialized
(PAC, SOAR, PHR, SWC)."""
