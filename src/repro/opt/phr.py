"""PHR: packet handling removal (paper section 5.3.3).

Two transformations:

1. **Metadata localization** -- a user metadata field whose every access
   occurs in one aggregate function (through one alias class) never needs
   its SRAM metadata slot: accesses become moves through a temp.

2. **Encapsulation elimination** -- a ``packet_encap``/``packet_decap``
   whose incoming head offset is statically known (SOAR) does not need to
   update the packet's ``head_ptr`` in SRAM metadata. The head movement
   is *deferred*: downstream accesses are re-based onto the stale head
   (their offsets adjusted by the pending delta) and a single
   ``PktSyncHead`` materializes the net movement right before the packet
   escapes (``channel_put``, a dynamic-offset primitive, a call...).
   Paired encap/decap with net delta zero vanish entirely -- the paper's
   paired-elimination special case falls out for free.

Run after SOAR (consumes its annotations), before packet lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baker import types as T
from repro.baker.packetmodel import META_USER_BASE
from repro.ir import instructions as I
from repro.ir.cfg import compute_cfg, reverse_postorder
from repro.ir.module import BasicBlock, IRFunction, IRModule
from repro.ir.values import Const, Temp
from repro.obs import ledger as obs_ledger
from repro.opt.aliases import AliasClasses

# Test-only fault injection (tests/test_analyze_mutations.py): when set
# to "rebase_skew", deferred-head re-basing shifts field accesses one
# byte past the true pending delta -- a deliberately broken elision the
# translation validator must catch. Never set outside tests.
_TEST_MUTATION = None


@dataclass
class PhrResult:
    localized_meta_fields: List[str] = field(default_factory=list)
    elided_encaps: int = 0
    syncs_inserted: int = 0


def run(mod: IRModule) -> PhrResult:
    result = PhrResult()
    _localize_metadata(mod, result)
    for fn in mod.functions.values():
        _elide_encaps(fn, result)
    return result


# -- metadata localization -----------------------------------------------------------


def _localize_metadata(mod: IRModule, result: PhrResult) -> None:
    # field name -> list of (function, instr); builtin words are never localized.
    sites: Dict[str, List[Tuple[IRFunction, I.Instr]]] = {}
    for fn in mod.functions.values():
        for instr in fn.all_instrs():
            if isinstance(instr, (I.MetaLoad, I.MetaStore)) and instr.word >= META_USER_BASE:
                sites.setdefault(instr.field, []).append((fn, instr))

    led = obs_ledger.get_ledger()
    for fname, accesses in sites.items():
        fns = {fn for fn, _ in accesses}
        if len(fns) != 1:
            led.record("phr", "meta:%s" % fname, "kept_in_sram",
                       reason="accessed from %d functions" % len(fns),
                       functions=len(fns), sites=len(accesses))
            continue
        fn = next(iter(fns))
        aliases = AliasClasses(fn)
        classes = {
            aliases.class_of(instr.ph)
            for _, instr in accesses
            if isinstance(instr.ph, Temp)
        }
        if len(classes) != 1:
            led.record("phr", "meta:%s" % fname, "kept_in_sram",
                       reason="accessed through %d alias classes" % len(classes),
                       alias_classes=len(classes), sites=len(accesses))
            continue
        # Copies inherit metadata; if the class's packets are ever copied,
        # the single temp would incorrectly couple the two packets.
        if any(isinstance(i, I.PktCopy) for i in fn.all_instrs()):
            led.record("phr", "meta:%s" % fname, "kept_in_sram",
                       reason="packets of this class are copied",
                       sites=len(accesses))
            continue
        local = fn.new_temp(T.U32, "meta_%s" % fname)
        init = I.Assign(local, Const(0))
        fn.entry.instrs.insert(0, init)
        for bb in fn.blocks:
            for idx, instr in enumerate(bb.instrs):
                if isinstance(instr, I.MetaLoad) and instr.field == fname:
                    bb.instrs[idx] = I.Assign(instr.dst, local)
                elif isinstance(instr, I.MetaStore) and instr.field == fname:
                    bb.instrs[idx] = I.Assign(local, instr.value)
        result.localized_meta_fields.append(fname)
        led.record("phr", "meta:%s" % fname, "localized",
                   reason="all accesses in %s through one alias class" % fn.name,
                   sites=len(accesses))


# -- encap/decap elision ---------------------------------------------------------------


def _elide_encaps(fn: IRFunction, result: PhrResult) -> None:
    compute_cfg(fn)
    aliases = AliasClasses(fn)
    classes = aliases.classes()
    if not classes:
        return
    order = reverse_postorder(fn)

    # Phase 1: fixpoint on per-block-entry pending deltas (per class).
    # pending: int = deferred head movement not yet in metadata.
    # A mismatch at a join forces a sync at the end of each incoming pred.
    TOP = object()
    entry: Dict[BasicBlock, Dict[Temp, object]] = {
        bb: {c: TOP for c in classes} for bb in order
    }
    for c in classes:
        entry[fn.entry][c] = 0
    forced_syncs: Dict[Tuple[BasicBlock, Temp], int] = {}

    for _ in range(4 * len(order) + 16):
        changed = False
        for bb in order:
            out = _simulate_block(bb, entry[bb], aliases, classes, forced_syncs)
            for succ in bb.succs:
                if succ not in entry:
                    continue
                for c in classes:
                    cur = entry[succ][c]
                    new = out[c]
                    if cur is TOP:
                        if new is not TOP and cur != new:
                            entry[succ][c] = new
                            changed = True
                    elif new is not TOP and cur != new:
                        # Join mismatch: force syncs on every pred edge.
                        for pred in succ.preds:
                            pout = _simulate_block(pred, entry[pred], aliases,
                                                   classes, forced_syncs)
                            if isinstance(pout.get(c), int) and pout[c] != 0:
                                forced_syncs[(pred, c)] = pout[c]
                        entry[succ][c] = 0
                        changed = True
        if not changed:
            break

    # Phase 2: rewrite.
    for bb in order:
        pending: Dict[Temp, int] = {
            c: (v if isinstance(v, int) else 0) for c, v in entry[bb].items()
        }
        new_instrs: List[I.Instr] = []
        for instr in bb.instrs:
            _rewrite_instr(fn, instr, pending, aliases, new_instrs, result)
        for c in classes:
            if forced_syncs.get((bb, c)) and pending.get(c, 0):
                ph = _handle_for_class(fn, aliases, c)
                if ph is not None:
                    new_instrs.append(I.PktSyncHead(ph, pending[c]))
                    result.syncs_inserted += 1
                    obs_ledger.get_ledger().record(
                        "phr", fn.name, "sync_inserted",
                        reason="join mismatch forces sync at block end",
                        delta_bytes=pending[c])
                    pending[c] = 0
        bb.instrs = new_instrs


def _simulate_block(bb: BasicBlock, entry_state, aliases, classes, forced_syncs):
    out = {c: entry_state[c] for c in classes}
    for instr in bb.instrs:
        cls = _class_target(instr, aliases)
        if cls is None:
            continue
        if isinstance(instr, (I.PktEncap, I.PktDecap)) and _elidable(instr):
            delta = instr.header_bytes if isinstance(instr, I.PktDecap) else -instr.header_bytes
            if isinstance(out.get(cls), int):
                out[cls] = out[cls] + delta
        elif _is_escape(instr):
            if isinstance(out.get(cls), int):
                out[cls] = 0
    for c in classes:
        if (bb, c) in forced_syncs and isinstance(out.get(c), int):
            out[c] = 0
    return out


def _class_target(instr: I.Instr, aliases: AliasClasses) -> Optional[Temp]:
    ph = None
    if isinstance(instr, (I.PktEncap, I.PktDecap, I.PktCopy)):
        ph = instr.src
    elif isinstance(instr, (I.PktLoadField, I.PktStoreField, I.PktLoadWords,
                            I.PktStoreWords, I.MetaLoad, I.MetaStore,
                            I.PktLength, I.PktAdjust, I.PktDrop, I.PktSyncHead)):
        ph = instr.ph
    elif isinstance(instr, I.ChanPut):
        ph = instr.ph
    elif isinstance(instr, I.Call):
        for a in instr.args:
            if isinstance(a, Temp) and a.type.is_packet:
                ph = a
                break
    if isinstance(ph, Temp) and ph.type.is_packet:
        return aliases.class_of(ph)
    return None


def _elidable(instr) -> bool:
    """Encap/decap with a statically known incoming head offset and a
    constant header size needs no runtime head_ptr update."""
    return (
        instr.header_bytes is not None
        and getattr(instr, "c_offset_bits", None) is not None
    )


def _is_escape(instr: I.Instr) -> bool:
    """Instructions whose lowering reads or writes the real head/len (or,
    for drops, after which the pending delta no longer matters)."""
    if isinstance(instr, (I.ChanPut, I.PktAdjust, I.PktCopy, I.Call, I.PktDrop)):
        return True
    if isinstance(instr, (I.PktEncap, I.PktDecap)) and not _elidable(instr):
        return True
    return False


def _rewrite_instr(fn: IRFunction, instr: I.Instr, pending: Dict[Temp, int],
                   aliases: AliasClasses, out: List[I.Instr],
                   result: PhrResult) -> None:
    cls = _class_target(instr, aliases)
    d = pending.get(cls, 0) if cls is not None else 0

    if isinstance(instr, (I.PktEncap, I.PktDecap)) and _elidable(instr):
        delta = instr.header_bytes if isinstance(instr, I.PktDecap) else -instr.header_bytes
        pending[cls] = d + delta
        out.append(I.Assign(instr.dst, instr.src))
        result.elided_encaps += 1
        obs_ledger.get_ledger().record(
            "phr", fn.name, "elided",
            reason="%s with statically known head offset"
                   % type(instr).__name__,
            loc=obs_ledger.loc_str(instr.loc),
            delta_bytes=delta, pending_bytes=pending[cls])
        return

    if cls is not None and d != 0:
        if isinstance(instr, (I.PktLoadField, I.PktStoreField)):
            # Re-base onto the stale (synced) head: the access offset
            # absorbs the pending delta and the static head annotation
            # moves back by the same amount.
            instr.bit_off += d * 8
            if instr.c_offset_bits is not None:
                instr.c_offset_bits -= d * 8
            out.append(instr)
            return
        if isinstance(instr, (I.PktLoadWords, I.PktStoreWords)):
            instr.byte_off += d
            if _TEST_MUTATION == "rebase_skew":
                instr.byte_off += 4
            if instr.c_offset_bits is not None:
                instr.c_offset_bits -= d * 8
            out.append(instr)
            return
        if isinstance(instr, I.PktLength):
            raw = fn.new_temp(T.U32)
            length_instr = I.PktLength(raw, instr.ph)
            length_instr.copy_annotations_from(instr)
            out.append(length_instr)
            out.append(I.BinOp("sub", instr.dst, raw, Const(d)))
            return
        if _is_escape(instr):
            if not isinstance(instr, I.PktDrop):
                handle = _escape_handle(instr)
                out.append(I.PktSyncHead(handle, d))
                result.syncs_inserted += 1
                obs_ledger.get_ledger().record(
                    "phr", fn.name, "sync_inserted",
                    reason="pending head delta materialized before %s"
                           % type(instr).__name__,
                    loc=obs_ledger.loc_str(instr.loc), delta_bytes=d)
            pending[cls] = 0
            out.append(instr)
            return
    elif cls is not None and _is_escape(instr):
        pending[cls] = 0

    out.append(instr)


def _escape_handle(instr: I.Instr) -> Temp:
    if isinstance(instr, I.Call):
        for a in instr.args:
            if isinstance(a, Temp) and a.type.is_packet:
                return a
        raise AssertionError("escape call without packet argument")
    if isinstance(instr, (I.PktCopy, I.PktEncap, I.PktDecap)):
        return instr.src
    return instr.ph


def _handle_for_class(fn: IRFunction, aliases: AliasClasses, cls: Temp) -> Optional[Temp]:
    for t in aliases.parent:
        if aliases.class_of(t) is cls:
            return t
    return None
