"""Optimization pass pipeline (the paper's "IPA and global optimizer"
scalar portion plus the WOPT stage of the code generator)."""

from __future__ import annotations

from typing import List

from repro.ir.cfg import simplify_cfg
from repro.ir.module import IRFunction, IRModule
from repro.opt import constprop, copyprop, cse, dce, inline
from repro.options import CompilerOptions

_MAX_ITER = 12


def scalar_optimize_function(fn: IRFunction) -> None:
    """Run the -O1 scalar pass set on one function to fixpoint."""
    for _ in range(_MAX_ITER):
        changed = False
        changed |= simplify_cfg(fn)
        changed |= constprop.run(fn)
        changed |= copyprop.run(fn)
        changed |= cse.run(fn)
        changed |= dce.run(fn)
        if not changed:
            break


def run_scalar_pipeline(mod: IRModule, opts: CompilerOptions) -> None:
    """Apply -O1/-O2 (scalar + inlining) according to ``opts``."""
    if opts.inline:
        inline.run(mod)
    if opts.scalar:
        for fn in mod.functions.values():
            scalar_optimize_function(fn)
    elif opts.inline:
        # Inlining without scalar cleanup still needs CFG normalization.
        for fn in mod.functions.values():
            simplify_cfg(fn)
