"""Optimization pass pipeline (the paper's "IPA and global optimizer"
scalar portion plus the WOPT stage of the code generator)."""

from __future__ import annotations

from repro.ir.cfg import simplify_cfg
from repro.ir.module import IRFunction, IRModule
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.opt import constprop, copyprop, cse, dce, inline
from repro.options import CompilerOptions

_MAX_ITER = 12

# The -O1 pass set, in the order it has always run. Named so the
# observability layer can attribute "changed something" counts per pass.
_SCALAR_PASSES = (
    ("simplify_cfg", simplify_cfg),
    ("constprop", constprop.run),
    ("copyprop", copyprop.run),
    ("cse", cse.run),
    ("dce", dce.run),
)


def scalar_optimize_function(fn: IRFunction) -> None:
    """Run the -O1 scalar pass set on one function to fixpoint."""
    reg = obs_metrics.get_registry()
    iterations = 0
    converged = False
    for _ in range(_MAX_ITER):
        iterations += 1
        changed = False
        for pass_name, pass_run in _SCALAR_PASSES:
            if pass_run(fn):
                changed = True
                reg.counter("opt.scalar.changed", passname=pass_name).inc()
        if not changed:
            converged = True
            break
    reg.counter("opt.scalar.fn_runs").inc()
    reg.histogram("opt.scalar.iterations").observe(iterations)
    if not converged:
        # The fixpoint loop ran out of budget while passes were still
        # reporting changes: the result is still correct (each pass is
        # sound in isolation) but possibly under-optimized.
        reg.counter("opt.scalar.fixpoint_exhausted").inc()
        obs_ledger.get_ledger().record(
            "scalar", fn.name, "fixpoint_exhausted",
            reason="still changing after _MAX_ITER iterations",
            iterations=iterations, max_iter=_MAX_ITER)


def run_scalar_pipeline(mod: IRModule, opts: CompilerOptions) -> None:
    """Apply -O1/-O2 (scalar + inlining) according to ``opts``."""
    if opts.inline:
        inline.run(mod)
    if opts.scalar:
        for fn in mod.functions.values():
            scalar_optimize_function(fn)
    elif opts.inline:
        # Inlining without scalar cleanup still needs CFG normalization.
        for fn in mod.functions.values():
            simplify_cfg(fn)
