"""Copy propagation.

Two flavors:

* **Global**: ``dst = src`` where both temps are defined exactly once --
  ``dst`` is ``src`` everywhere it is used, so uses are rewritten and the
  copy left for DCE.
* **Block-local**: a forward scan per block tracking currently-valid
  copies, which also handles the multi-definition "variable" temps the
  Baker lowerer produces for mutable locals.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.values import Const, Operand, Temp


def _global_copy_prop(fn: IRFunction) -> bool:
    def_counts: Counter = Counter()
    for instr in fn.all_instrs():
        for d in instr.defs():
            def_counts[d] += 1
    for p in fn.params:
        def_counts[p] += 1

    mapping: Dict[Temp, Temp] = {}
    for instr in fn.all_instrs():
        if (
            isinstance(instr, I.Assign)
            and isinstance(instr.src, Temp)
            and def_counts[instr.dst] == 1
            and def_counts[instr.src] == 1
            and instr.dst not in fn.params
        ):
            mapping[instr.dst] = instr.src
    if not mapping:
        return False

    # Resolve chains (a->b, b->c => a->c).
    def resolve(t: Temp) -> Temp:
        seen = set()
        while t in mapping and t not in seen:
            seen.add(t)
            t = mapping[t]
        return t

    flat = {k: resolve(k) for k in mapping}
    changed = False
    for instr in fn.all_instrs():
        before = list(instr.uses())
        instr.replace_uses(flat)  # type: ignore[arg-type]
        if list(instr.uses()) != before:
            changed = True
    return changed


def _local_copy_prop(fn: IRFunction) -> bool:
    changed = False
    for bb in fn.blocks:
        valid: Dict[Temp, Operand] = {}
        for instr in bb.all_instrs():
            if valid:
                before = list(instr.uses())
                instr.replace_uses(valid)
                if list(instr.uses()) != before:
                    changed = True
            defs = instr.defs()
            if defs:
                for d in defs:
                    valid.pop(d, None)
                    for k in [k for k, v in valid.items() if v is d]:
                        valid.pop(k)
            if isinstance(instr, I.Assign):
                src = instr.src
                if isinstance(src, (Temp, Const)) and src is not instr.dst:
                    valid[instr.dst] = src
    return changed


def run(fn: IRFunction) -> bool:
    a = _global_copy_prop(fn)
    b = _local_copy_prop(fn)
    return a or b
