"""Function inlining.

The paper's -O2 level "inlines base packet handling routines"; it also
relies on aggressive inlining of support functions to merge stack frames
(section 5.4). Baker forbids recursion, so inlining processes the call
graph callees-first and always terminates.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional

from repro.ir import instructions as I
from repro.ir.callgraph import CallGraph
from repro.ir.module import BasicBlock, IRFunction, IRModule, LocalArray
from repro.ir.values import Const, Operand, Temp
from repro.obs import ledger as obs_ledger

# Functions at or below this size are always inlined at -O2; larger ones
# are inlined only when they have a single call site.
DEFAULT_SIZE_LIMIT = 80


def clone_instr(instr: I.Instr, temp_map: Dict[Temp, Temp],
                block_map: Dict[BasicBlock, BasicBlock],
                new_temp: Callable[[Temp], Temp]) -> I.Instr:
    """Deep-copy one instruction, remapping temps and block references."""

    def map_temp(t: Temp) -> Temp:
        if t not in temp_map:
            temp_map[t] = new_temp(t)
        return temp_map[t]

    def map_operand(v):
        if isinstance(v, Temp):
            return map_temp(v)
        return v

    dup = copy.copy(instr)
    for attr in list(dup._uses) + list(dup._defs):
        v = getattr(dup, attr)
        if v is None:
            continue
        if isinstance(v, list):
            setattr(dup, attr, [map_operand(x) for x in v])
        else:
            setattr(dup, attr, map_operand(v))
    if isinstance(dup, I.Jump):
        dup.target = block_map[dup.target]
    elif isinstance(dup, I.Branch):
        dup.then_bb = block_map[dup.then_bb]
        dup.else_bb = block_map[dup.else_bb]
    return dup


def _inline_one_call(caller: IRFunction, bb: BasicBlock, index: int,
                     call: I.Call, callee: IRFunction) -> None:
    """Splice ``callee`` in place of ``bb.instrs[index]``."""
    # Split the block after the call.
    cont = caller.new_block("inl_cont")
    cont.instrs = bb.instrs[index + 1 :]
    cont.terminator = bb.terminator
    bb.instrs = bb.instrs[:index]
    bb.terminator = None

    # Clone callee local arrays under fresh names.
    array_map: Dict[str, str] = {}
    for name, arr in callee.local_arrays.items():
        fresh = "%s.inl%d" % (name, len(caller.local_arrays))
        caller.local_arrays[fresh] = LocalArray(fresh, arr.element, arr.length)
        array_map[name] = fresh

    temp_map: Dict[Temp, Temp] = {}
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for cbb in callee.blocks:
        block_map[cbb] = caller.new_block("inl_%s" % cbb.label)

    def new_temp(t: Temp) -> Temp:
        return caller.new_temp(t.type, t.hint)

    # Bind arguments.
    for param, arg in zip(callee.params, call.args):
        pt = temp_map.setdefault(param, new_temp(param))
        bb.append(I.Assign(pt, arg))
    bb.terminate(I.Jump(block_map[callee.entry]))

    for cbb in callee.blocks:
        target = block_map[cbb]
        for instr in cbb.instrs:
            dup = clone_instr(instr, temp_map, block_map, new_temp)
            if isinstance(dup, (I.LoadL, I.StoreL)):
                dup.array = array_map[dup.array]
            target.append(dup)
        term = cbb.terminator
        if isinstance(term, I.Ret):
            if call.dst is not None and term.value is not None:
                value: Operand = term.value
                if isinstance(value, Temp):
                    value = temp_map.setdefault(value, new_temp(value))
                target.append(I.Assign(call.dst, value))
            elif call.dst is not None:
                target.append(I.Assign(call.dst, Const(0)))
            target.terminate(I.Jump(cont))
        else:
            target.terminate(clone_instr(term, temp_map, block_map, new_temp))


def run(mod: IRModule,
        should_inline: Optional[Callable[[IRFunction, CallGraph], bool]] = None,
        size_limit: int = DEFAULT_SIZE_LIMIT) -> bool:
    """Inline eligible calls across the whole module. Returns True if any
    call was inlined."""
    cg = CallGraph(mod)

    if should_inline is None:
        def should_inline(callee: IRFunction, cg: CallGraph = cg) -> bool:  # type: ignore
            if callee.kind == "init":
                return False
            # PPFs become direct callees after aggregation merges their
            # input channel; inlining them completes the merge.
            if callee.kind == "ppf":
                return True
            if callee.instr_count() <= size_limit:
                return True
            return len(cg.callers.get(callee.name, ())) == 1

    led = obs_ledger.get_ledger()
    rejected_pairs = set()  # ledger noise control only; never affects inlining

    changed = False
    # Callees-first order means by the time we inline f into g, f already
    # contains its own inlined callees (single pass suffices).
    for name in cg.topological():
        caller = mod.functions.get(name)
        if caller is None:
            continue
        again = True
        while again:
            again = False
            for bb in list(caller.blocks):
                for idx, instr in enumerate(bb.instrs):
                    if not isinstance(instr, I.Call):
                        continue
                    callee = mod.functions.get(instr.func)
                    if callee is None or callee is caller:
                        continue
                    if not should_inline(callee):
                        if led.enabled:
                            pair = (caller.name, callee.name)
                            if pair not in rejected_pairs:
                                rejected_pairs.add(pair)
                                led.record(
                                    "inline", "%s->%s" % pair, "rejected",
                                    reason="init functions are never inlined"
                                           if callee.kind == "init" else
                                           "callee too large with multiple "
                                           "call sites",
                                    callee_size=callee.instr_count(),
                                    size_limit=size_limit,
                                    call_sites=len(cg.callers.get(
                                        callee.name, ())))
                        continue
                    if led.enabled:
                        led.record(
                            "inline", "%s->%s" % (caller.name, callee.name),
                            "inlined",
                            reason="ppf merge" if callee.kind == "ppf"
                                   else "under size limit or single caller",
                            callee_size=callee.instr_count(),
                            callee_kind=callee.kind)
                    _inline_one_call(caller, bb, idx, instr, callee)
                    changed = True
                    again = True
                    break
                if again:
                    break
    return changed
