"""SOAR: static offset and alignment resolution (paper section 5.3.2).

Determines, per packet access, the *static* byte offset of the handle's
head relative to the start of packet data (``c_offset``) and the static
*alignment* of the head (``c_alignment``), via flow analysis over
``packet_encap`` / ``packet_decap`` / handle creation:

* at handles entering via Rx:     c_offset = 0, c_alignment = quadword;
* at ``packet_encap``:            c_offset -= header size;
* at ``packet_decap``:            c_offset += header size
  (unknown when the demux is packet-dependent);
* at control-flow joins:          values must agree, else ``-offset``
  (represented here as ``None``).

The analysis is interprocedural across PPFs: the value entering a PPF is
the join over every producer's value at its ``channel_put`` site, solved
to fixpoint over the channel graph. Handles born from ``packet_create``
/ ``packet_copy`` are seeded directly at their definition; this forward
seeding subsumes the paper's separate backward propagation passes
(steps 4 and 7), which exist to recover offsets for exactly those
non-Rx packets.

Results are recorded as ``c_offset_bits`` / ``c_alignment`` annotations
on every packet instruction; the packet lowering stage and PHR consume
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ir import instructions as I
from repro.ir.cfg import compute_cfg, reverse_postorder
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Const, Temp
from repro.obs import ledger as obs_ledger
from repro.opt.aliases import AliasClasses

QUADWORD = 8

# A lattice value per alias class: (offset_bytes or None, alignment 8/4/2/1).
ClassValue = Tuple[Optional[int], int]
# Block state: class representative -> value. Missing class = TOP (unreached).
State = Dict[Temp, ClassValue]

BOTTOM: ClassValue = (None, 1)


def _align_of_offset(offset: Optional[int], base_align: int = QUADWORD) -> int:
    if offset is None:
        return 1
    a = base_align
    while a > 1 and offset % a != 0:
        a //= 2
    return a


def _meet_value(a: ClassValue, b: ClassValue) -> ClassValue:
    off = a[0] if a[0] == b[0] else None
    align = _gcd_align(a[1], b[1])
    return (off, align)


def _gcd_align(a: int, b: int) -> int:
    while a > 1 and (b % a) != 0:
        a //= 2
    return max(a, 1)


def _shift_value(value: ClassValue, delta_bytes: Optional[int]) -> ClassValue:
    """Value after the head moves by ``delta_bytes`` (None = unknown)."""
    off, align = value
    if delta_bytes is None:
        return BOTTOM
    new_off = None if off is None else off + delta_bytes
    new_align = (
        _align_of_offset(new_off)
        if new_off is not None
        else _gcd_align(align, _align_of_offset(delta_bytes))
    )
    return (new_off, new_align)


@dataclass
class SoarResult:
    """Resolved channel-entry values, for diagnostics and tests."""

    channel_values: Dict[str, ClassValue] = field(default_factory=dict)
    resolved_accesses: int = 0
    total_accesses: int = 0

    @property
    def resolution_rate(self) -> float:
        if self.total_accesses == 0:
            return 1.0
        return self.resolved_accesses / self.total_accesses


def run(mod: IRModule) -> SoarResult:
    """Run SOAR over the module, annotating packet instructions in place."""
    result = SoarResult()
    # Channel fixpoint: start every channel at TOP (unobserved); rx is the
    # boundary with offset 0, quadword aligned.
    chan_values: Dict[str, Optional[ClassValue]] = {name: None for name in mod.channels}
    chan_values["rx"] = (0, QUADWORD)

    ppfs = mod.ppfs()
    for _ in range(len(ppfs) * 4 + 8):
        changed = False
        for fn in ppfs:
            entry = None
            for chan in fn.input_channels:
                v = chan_values.get(chan)
                if v is None:
                    continue
                entry = v if entry is None else _meet_value(entry, v)
            if entry is None:
                entry = (0, QUADWORD) if "rx" in fn.input_channels else None
            if entry is None:
                continue  # no producer observed yet
            puts = _analyze_function(fn, entry, annotate=False)
            for chan, value in puts.items():
                old = chan_values.get(chan)
                new = value if old is None else _meet_value(old, value)
                if new != old:
                    chan_values[chan] = new
                    changed = True
        if not changed:
            break

    # Final annotation passes.
    for fn in ppfs:
        entry = None
        for chan in fn.input_channels:
            v = chan_values.get(chan)
            if v is not None:
                entry = v if entry is None else _meet_value(entry, v)
        if entry is None:
            entry = BOTTOM
        _analyze_function(fn, entry, annotate=True, result=result)
    for fn in mod.funcs():
        # Support functions may receive handles; without inlining their
        # entry offsets are unknown (conservative).
        _analyze_function(fn, BOTTOM, annotate=True, result=result)

    result.channel_values = {
        name: v for name, v in chan_values.items() if v is not None
    }
    led = obs_ledger.get_ledger()
    if led.enabled:
        for name, (off, align) in sorted(result.channel_values.items()):
            led.record("soar", "channel:%s" % name,
                       "resolved" if off is not None else "unresolved",
                       reason="head offset at channel entry",
                       offset_bytes=off, alignment=align)
        led.record("soar", "<module>", "summary",
                   resolved=result.resolved_accesses,
                   total=result.total_accesses,
                   resolution_rate=result.resolution_rate)
    return result


def _analyze_function(
    fn: IRFunction,
    param_value: ClassValue,
    annotate: bool,
    result: Optional[SoarResult] = None,
) -> Dict[str, ClassValue]:
    """Forward dataflow within one function. Returns the value observed at
    each channel_put. When ``annotate`` is set, packet instructions get
    their ``c_offset_bits`` / ``c_alignment`` annotations."""
    aliases = AliasClasses(fn)
    compute_cfg(fn)
    order = reverse_postorder(fn)

    entry_state: State = {}
    for p in fn.params:
        if p.type.is_packet:
            entry_state[aliases.class_of(p)] = param_value

    block_in: Dict[object, Optional[State]] = {bb: None for bb in order}
    block_in[fn.entry] = entry_state
    puts: Dict[str, ClassValue] = {}

    def meet_states(a: Optional[State], b: Optional[State]) -> Optional[State]:
        if a is None:
            return dict(b) if b is not None else None
        if b is None:
            return dict(a)
        out: State = {}
        for k in set(a) | set(b):
            if k in a and k in b:
                out[k] = _meet_value(a[k], b[k])
            else:
                out[k] = a.get(k, b.get(k))
        return out

    # Worklist fixpoint over blocks.
    changed = True
    iterations = 0
    while changed and iterations < 4 * len(order) + 16:
        iterations += 1
        changed = False
        for bb in order:
            if bb is fn.entry:
                state = dict(entry_state)
            else:
                state = None
                for pred in bb.preds:
                    state = meet_states(state, _transfer_block(pred, block_in[pred],
                                                              aliases, None, None))
                if state is None:
                    continue
            if block_in[bb] != state:
                block_in[bb] = state
                changed = True

    # Annotation + put collection on the stabilized solution.
    for bb in order:
        state = block_in[bb]
        if state is None:
            continue
        _transfer_block(bb, state, aliases,
                        puts if True else None,
                        result if annotate else None)
    return puts


def _transfer_block(bb, in_state: Optional[State], aliases: AliasClasses,
                    puts: Optional[Dict[str, ClassValue]],
                    result: Optional[SoarResult]) -> Optional[State]:
    if in_state is None:
        return None
    state: State = dict(in_state)
    for instr in bb.all_instrs():
        if isinstance(instr, (I.PktLoadField, I.PktStoreField,
                              I.PktLoadWords, I.PktStoreWords,
                              I.MetaLoad, I.MetaStore, I.PktLength)):
            ph = instr.ph
            if isinstance(ph, Temp):
                value = state.get(aliases.class_of(ph), BOTTOM)
                if result is not None:
                    _annotate(instr, value, result,
                              counted=not isinstance(instr, (I.MetaLoad, I.MetaStore,
                                                             I.PktLength)))
        elif isinstance(instr, I.PktEncap):
            cls = aliases.class_of(instr.src) if isinstance(instr.src, Temp) else None
            if cls is not None:
                value = state.get(cls, BOTTOM)
                if result is not None:
                    _annotate(instr, value, result, counted=False)
                state[cls] = _shift_value(value, -instr.header_bytes)
        elif isinstance(instr, I.PktDecap):
            cls = aliases.class_of(instr.src) if isinstance(instr.src, Temp) else None
            if cls is not None:
                value = state.get(cls, BOTTOM)
                if result is not None:
                    _annotate(instr, value, result, counted=False)
                state[cls] = _shift_value(value, instr.header_bytes)
        elif isinstance(instr, I.PktSyncHead):
            cls = aliases.class_of(instr.ph) if isinstance(instr.ph, Temp) else None
            if cls is not None:
                state[cls] = _shift_value(state.get(cls, BOTTOM), instr.delta_bytes)
        elif isinstance(instr, I.PktAdjust):
            cls = aliases.class_of(instr.ph) if isinstance(instr.ph, Temp) else None
            if cls is not None:
                if instr.op in ("extend", "shorten"):
                    amount = instr.amount.value if isinstance(instr.amount, Const) else None
                    delta = None if amount is None else (
                        -amount if instr.op == "extend" else amount
                    )
                    state[cls] = _shift_value(state.get(cls, BOTTOM), delta)
                # add_tail / remove_tail leave the head untouched.
        elif isinstance(instr, I.PktCopy):
            # The copy inherits the source's head position.
            src_cls = aliases.class_of(instr.src) if isinstance(instr.src, Temp) else None
            value = state.get(src_cls, BOTTOM) if src_cls is not None else BOTTOM
            state[aliases.class_of(instr.dst)] = value
        elif isinstance(instr, I.PktCreate):
            # Fresh buffer: head starts at the (quadword-aligned) headroom.
            state[aliases.class_of(instr.dst)] = (0, QUADWORD)
        elif isinstance(instr, I.Call):
            # The callee may encap/decap any packet argument.
            for a in instr.args:
                if isinstance(a, Temp) and a.type.is_packet:
                    state[aliases.class_of(a)] = BOTTOM
        elif isinstance(instr, I.ChanPut):
            if puts is not None and isinstance(instr.ph, Temp):
                value = state.get(aliases.class_of(instr.ph), BOTTOM)
                prev = puts.get(instr.channel)
                puts[instr.channel] = value if prev is None else _meet_value(prev, value)
    return state


def _annotate(instr: I.PktInstr, value: ClassValue, result: SoarResult,
              counted: bool) -> None:
    off, align = value
    instr.c_offset_bits = None if off is None else off * 8
    instr.c_alignment = align
    if counted:
        result.total_accesses += 1
        if off is not None:
            result.resolved_accesses += 1
        led = obs_ledger.get_ledger()
        if led.enabled:
            led.record(
                "soar",
                obs_ledger.loc_str(instr.loc) or type(instr).__name__,
                "resolved" if off is not None else "unresolved",
                loc=obs_ledger.loc_str(instr.loc),
                offset_bits=instr.c_offset_bits, alignment=align)
