"""Packet-handle alias classes.

A packet handle *is* the SRAM address of the packet's metadata block, so
copying a handle, or encapsulating/decapsulating through it, yields a
value that refers to the same underlying packet (same head pointer).
Baker's type-alias-free pointer rule means the only sources of handles
are: PPF parameters, ``packet_copy``, ``packet_create``, and derivations
of existing handles -- so a simple union-find per function gives exact
must-alias classes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baker import types as T
from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.values import Temp


class AliasClasses:
    """Union-find over packet-typed temps of one function."""

    def __init__(self, fn: IRFunction):
        self.parent: Dict[Temp, Temp] = {}
        for t in fn.params:
            if t.type.is_packet:
                self.parent[t] = t
        for instr in fn.all_instrs():
            for d in instr.defs():
                if d.type.is_packet:
                    self.parent.setdefault(d, d)
            for u in instr.uses():
                if isinstance(u, Temp) and u.type.is_packet:
                    self.parent.setdefault(u, u)
        for instr in fn.all_instrs():
            if isinstance(instr, I.Assign) and isinstance(instr.src, Temp) \
                    and instr.dst.type.is_packet:
                self._union(instr.dst, instr.src)
            elif isinstance(instr, (I.PktEncap, I.PktDecap)):
                if isinstance(instr.src, Temp):
                    self._union(instr.dst, instr.src)
            # PktCopy / PktCreate results intentionally stay in their own class.

    def _find(self, t: Temp) -> Temp:
        root = t
        while self.parent[root] is not root:
            root = self.parent[root]
        while self.parent[t] is not root:
            self.parent[t], t = root, self.parent[t]
        return root

    def _union(self, a: Temp, b: Temp) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra is not rb:
            self.parent[ra] = rb

    def class_of(self, t: Temp) -> Temp:
        """Canonical representative of the temp's alias class."""
        return self._find(t)

    def classes(self) -> List[Temp]:
        return sorted({self._find(t) for t in self.parent}, key=lambda t: t.id)

    def same(self, a: Temp, b: Temp) -> bool:
        return self._find(a) is self._find(b)


def mutates_class(instr: I.Instr, aliases: AliasClasses, cls: Temp) -> bool:
    """True if ``instr`` changes the head/extent of packets in class
    ``cls`` or releases them (making later combined access unsound)."""
    if isinstance(instr, (I.PktEncap, I.PktDecap)):
        target = instr.src
    elif isinstance(instr, (I.PktAdjust, I.PktSyncHead)):
        target = instr.ph
    elif isinstance(instr, I.ChanPut):
        target = instr.ph
    elif isinstance(instr, I.PktDrop):
        target = instr.ph
    elif isinstance(instr, I.Call):
        # A call may mutate any packet reachable through its arguments.
        return any(
            isinstance(a, Temp) and a.type.is_packet and aliases.same(a, cls)
            for a in instr.args
        )
    else:
        return False
    return isinstance(target, Temp) and aliases.same(target, cls)
