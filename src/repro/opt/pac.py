"""PAC: packet access combining (paper section 5.3.1).

Combines multiple protocol-field accesses through the same packet handle
into a single wide DRAM access (the IXP reads/writes up to 64 B of DRAM
per memory instruction). Combining criteria, following the paper:

* the ``packet_handle``\\ s must be equal -- here: same must-alias class
  (see :mod:`repro.opt.aliases`);
* the accessed ranges must fall within one maximum-width window (64 B);
* dominance: an access is only absorbed into one that dominates it;
* no data dependence may be violated: for loads, no intervening store
  overlapping the absorbed bytes and no head movement (encap/decap/...)
  between the accesses; for stores, no intervening load of already-
  buffered bytes, with the merged store placed at the last member.

Loads are combinable across basic blocks (the wide load is a safe
speculative widening when the leader dominates the absorbed access and
the head-position epoch provably matches). Stores are combined within a
basic block, which is where back-to-back header rewrites occur in
practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baker import types as T
from repro.ir import instructions as I
from repro.ir.cfg import compute_cfg, reverse_postorder
from repro.ir.dominators import DomTree, dominator_tree
from repro.ir.module import BasicBlock, IRFunction, IRModule
from repro.ir.values import Const, Operand, Temp
from repro.obs import ledger as obs_ledger
from repro.opt.aliases import AliasClasses, mutates_class

# One DRAM instruction moves at most 64 B; the combining window is kept
# slightly narrower so a misaligned window (the head need not be 8 B
# aligned) still fits one instruction in the common case.
MAX_COMBINE_BYTES = 56

# Test-only fault injection (tests/test_analyze_mutations.py): when set
# to "extract_skew", absorbed field extractions read 8 bits past their
# true offset -- a deliberately broken combine the translation validator
# must catch. Never set outside tests.
_TEST_MUTATION = None


@dataclass
class PacResult:
    combined_loads: int = 0  # original field loads folded into wide loads
    combined_stores: int = 0
    wide_loads: int = 0
    wide_stores: int = 0
    combined_global_loads: int = 0  # application loads coalesced
    wide_global_loads: int = 0


# Widest single SRAM instruction: 8 words.
MAX_GLOBAL_COMBINE_BYTES = 32


def run(mod: IRModule) -> PacResult:
    result = PacResult()
    for fn in mod.functions.values():
        _combine_function(fn, result)
        _combine_global_loads(fn, result)
    return result


# -- per-function driver ---------------------------------------------------------


@dataclass
class _Access:
    bb: BasicBlock
    index: int
    instr: I.Instr
    cls: Temp
    bit_off: int
    bit_width: int
    epoch: Optional[int]
    wide: bool = False  # PktLoadWords/PktStoreWords from an earlier pass

    @property
    def bit_end(self) -> int:
        return self.bit_off + self.bit_width

    def covered_bits(self):
        """Bits actually accessed (wide stores may be byte-masked)."""
        if self.wide and isinstance(self.instr, I.PktStoreWords):
            bits = set()
            for i, mask in enumerate(self.instr.byte_masks):
                for b in range(4):
                    if mask & (1 << (3 - b)):
                        byte = self.instr.byte_off + i * 4 + b
                        bits.update(range(byte * 8, byte * 8 + 8))
            return bits
        return set(range(self.bit_off, self.bit_end))


def _combine_function(fn: IRFunction, result: PacResult) -> None:
    compute_cfg(fn)
    aliases = AliasClasses(fn)
    if not aliases.classes():
        return
    # Distinct alias classes are provably distinct packets only when each
    # roots at the (single) PPF parameter, a packet_copy or packet_create.
    # A support function taking two handle parameters could be called with
    # aliases of one packet; skip combining there (cold code anyway).
    param_classes = {aliases.class_of(p) for p in fn.params if p.type.is_packet}
    if len(param_classes) > 1:
        return
    dom = dominator_tree(fn)
    order = {bb: i for i, bb in enumerate(reverse_postorder(fn))}

    epochs = {cls: _class_epochs(fn, aliases, cls) for cls in aliases.classes()}

    loads: List[_Access] = []
    stores: List[_Access] = []
    for bb in fn.blocks:
        if bb not in order:
            continue
        for idx, instr in enumerate(bb.instrs):
            if not isinstance(instr, (I.PktLoadField, I.PktStoreField,
                                      I.PktLoadWords, I.PktStoreWords)):
                continue
            if not isinstance(instr.ph, Temp):
                continue
            cls = aliases.class_of(instr.ph)
            epoch = _epoch_at(bb, idx, epochs[cls])
            if isinstance(instr, (I.PktLoadWords, I.PktStoreWords)):
                acc = _Access(bb, idx, instr, cls, instr.byte_off * 8,
                              instr.nwords * 32, epoch, wide=True)
            else:
                acc = _Access(bb, idx, instr, cls, instr.bit_off,
                              instr.bit_width, epoch)
            is_load = isinstance(instr, (I.PktLoadField, I.PktLoadWords))
            (loads if is_load else stores).append(acc)

    replacements: Dict[BasicBlock, Dict[int, List[I.Instr]]] = {}

    _combine_loads(fn, loads, dom, order, aliases, replacements, result)
    _combine_stores(fn, stores, aliases, replacements, result)

    for bb, repl in replacements.items():
        new_instrs: List[I.Instr] = []
        for idx, instr in enumerate(bb.instrs):
            if idx in repl:
                new_instrs.extend(repl[idx])
            else:
                new_instrs.append(instr)
        bb.instrs = new_instrs


# -- epochs: how many head-moving/packet-mutating events precede a point -----------


def _class_epochs(fn: IRFunction, aliases: AliasClasses, cls: Temp):
    """Block-entry epoch values for one alias class: an integer if every
    path agrees, else None (bottom). The epoch counts head movements,
    releases AND field stores, so equal epochs imply no interference."""

    def bumps(instr: I.Instr) -> bool:
        if mutates_class(instr, aliases, cls):
            return True
        if isinstance(instr, (I.PktStoreField, I.PktStoreWords)) and isinstance(
            instr.ph, Temp
        ):
            return aliases.same(instr.ph, cls)
        return False

    block_bumps = {bb: sum(1 for i in bb.all_instrs() if bumps(i)) for bb in fn.blocks}

    TOP = object()
    BOT = object()
    entry: Dict[BasicBlock, object] = {bb: TOP for bb in fn.blocks}
    entry[fn.entry] = 0
    changed = True
    guard = 0
    while changed and guard < 4 * len(fn.blocks) + 16:
        guard += 1
        changed = False
        for bb in fn.blocks:
            value = entry[bb]
            if value is TOP:
                continue
            out = BOT if value is BOT else value + block_bumps[bb]
            for succ in bb.succs:
                cur = entry[succ]
                new = out if cur is TOP else (cur if cur == out else BOT)
                if new is not cur and new != cur:
                    entry[succ] = new
                    changed = True
    return {
        "entry": {bb: (v if isinstance(v, int) else None) for bb, v in entry.items()},
        "bumps": block_bumps,
        "bump_fn": bumps,
    }


def _epoch_at(bb: BasicBlock, index: int, epochs) -> Optional[int]:
    base = epochs["entry"].get(bb)
    if base is None:
        return None
    bump = epochs["bump_fn"]
    return base + sum(1 for i in bb.instrs[:index] if bump(i))


# -- load combining ----------------------------------------------------------------


def _combine_loads(fn, loads: List[_Access], dom: DomTree, order, aliases,
                   replacements, result: PacResult) -> None:
    loads = sorted(loads, key=lambda a: (order.get(a.bb, 1 << 30), a.index))
    used = set()
    for i, leader in enumerate(loads):
        if id(leader.instr) in used or leader.epoch is None:
            continue
        group = [leader]
        span = [leader.bit_off, leader.bit_end]
        for follower in loads[i + 1 :]:
            if id(follower.instr) in used or follower.cls is not leader.cls:
                continue
            if follower.bb is leader.bb:
                # Fine-grained same-block check subsumes the epoch test.
                if not _block_path_clear(leader, follower, aliases):
                    continue
            else:
                if follower.epoch is None or follower.epoch != leader.epoch:
                    continue
                if not dom.strictly_dominates(leader.bb, follower.bb):
                    continue
            new_lo = min(span[0], follower.bit_off)
            new_hi = max(span[1], follower.bit_end)
            if _span_bytes(new_lo, new_hi) > MAX_COMBINE_BYTES:
                continue
            group.append(follower)
            span[0], span[1] = new_lo, new_hi
        if len(group) < 2:
            continue
        _rewrite_load_group(fn, group, span, replacements, result)
        for acc in group:
            used.add(id(acc.instr))


def _block_path_clear(leader: _Access, follower: _Access, aliases) -> bool:
    """Same-block check: between the two loads there is no head movement
    or release of the class, and no store overlapping the follower's
    bytes."""
    bb = leader.bb
    for instr in bb.instrs[leader.index + 1 : follower.index]:
        if mutates_class(instr, aliases, leader.cls):
            return False
        if isinstance(instr, I.PktStoreField):
            if instr.bit_off < follower.bit_end and follower.bit_off < (
                instr.bit_off + instr.bit_width
            ):
                return False
        elif isinstance(instr, I.PktStoreWords):
            lo = instr.byte_off * 8
            hi = lo + instr.nwords * 32
            if lo < follower.bit_end and follower.bit_off < hi:
                return False
    return True


def _span_bytes(lo_bit: int, hi_bit: int) -> int:
    start = (lo_bit // 32) * 4
    end = ((hi_bit + 31) // 32) * 4
    return end - start


def _rewrite_load_group(fn: IRFunction, group: List[_Access], span,
                        replacements, result: PacResult) -> None:
    leader = group[0]
    start_byte = (span[0] // 32) * 4
    end_byte = ((span[1] + 31) // 32) * 4
    nwords = (end_byte - start_byte) // 4
    words = [fn.new_temp(T.U32, "pac_w%d" % k) for k in range(nwords)]
    wide = I.PktLoadWords(words, leader.instr.ph, start_byte, nwords)
    wide.copy_annotations_from(leader.instr)
    wide.c_offset_bits = getattr(leader.instr, "c_offset_bits", None)
    wide.c_alignment = getattr(leader.instr, "c_alignment", None)

    for acc in group:
        seq: List[I.Instr] = []
        if acc is leader:
            seq.append(wide)
        if acc.wide:
            for i, dst in enumerate(acc.instr.dsts):
                extract_into(fn, seq, words, start_byte * 8,
                             acc.bit_off + 32 * i, 32, dst)
        else:
            bit_off = acc.bit_off
            if (_TEST_MUTATION == "extract_skew"
                    and bit_off + 8 + acc.bit_width <= end_byte * 8):
                bit_off += 8
            extract_into(fn, seq, words, start_byte * 8,
                         bit_off, acc.bit_width, acc.instr.dst)
        replacements.setdefault(acc.bb, {})[acc.index] = seq
    result.wide_loads += 1
    result.combined_loads += len(group)
    obs_ledger.get_ledger().record(
        "pac", fn.name, "combined_loads",
        reason="%d packet loads folded into one %d-word access"
               % (len(group), nwords),
        loc=obs_ledger.loc_str(leader.instr.loc),
        members=len(group), nwords=nwords, start_byte=start_byte)


def extract_into(fn: IRFunction, out: List[I.Instr], words: List[Temp],
                 span_start_bits: int, bit_off: int, width: int, dst: Temp) -> None:
    """Emit shift/mask IR computing a bit-field from preloaded words."""
    rel = bit_off - span_start_bits
    first = rel // 32
    last = (rel + width - 1) // 32
    wide = width > 32
    vtype = T.U64 if wide else T.U32

    def temp() -> Temp:
        return fn.new_temp(vtype)

    if first == last:
        w = words[first]
        shift = 32 - (rel % 32) - width
        if width == 32:
            out.append(I.Assign(dst, w))
            return
        t1 = temp()
        if shift:
            out.append(I.BinOp("lshr", t1, w, Const(shift)))
        else:
            out.append(I.Assign(t1, w))
        out.append(I.BinOp("and", dst, t1, Const((1 << width) - 1, vtype)))
        return

    # Multi-word: accumulate big-endian into a (possibly 64-bit) value.
    acc: Optional[Temp] = None
    covered = 0  # bits of the field produced so far
    pos = rel
    remaining = width
    for wi in range(first, last + 1):
        word_lo = wi * 32
        word_hi = word_lo + 32
        take_lo = max(pos, word_lo)
        take_hi = min(rel + width, word_hi)
        nbits = take_hi - take_lo
        # Extract nbits from this word, right-aligned.
        part = temp()
        shift_right = word_hi - take_hi
        if shift_right:
            out.append(I.BinOp("lshr", part, words[wi], Const(shift_right)))
        else:
            out.append(I.Assign(part, words[wi]))
        if nbits < 32:
            masked = temp()
            out.append(I.BinOp("and", masked, part, Const((1 << nbits) - 1, vtype)))
            part = masked
        if acc is None:
            acc = part
        else:
            shifted = temp()
            out.append(I.BinOp("shl", shifted, acc, Const(nbits)))
            merged = temp()
            out.append(I.BinOp("or", merged, shifted, part))
            acc = merged
        covered += nbits
        pos = take_hi
    assert acc is not None and covered == width
    out.append(I.Assign(dst, acc))


# -- store combining ----------------------------------------------------------------


def _combine_stores(fn, stores: List[_Access], aliases, replacements,
                    result: PacResult) -> None:
    by_block: Dict[BasicBlock, List[_Access]] = {}
    for acc in stores:
        by_block.setdefault(acc.bb, []).append(acc)
    for bb, accs in by_block.items():
        accs.sort(key=lambda a: a.index)
        i = 0
        while i < len(accs):
            group = [accs[i]]
            span = [accs[i].bit_off, accs[i].bit_end]
            j = i + 1
            while j < len(accs):
                cand = accs[j]
                if cand.cls is not group[0].cls:
                    j += 1
                    continue
                if not _store_path_clear(bb, group, cand, aliases):
                    break
                new_lo = min(span[0], cand.bit_off)
                new_hi = max(span[1], cand.bit_end)
                if _span_bytes(new_lo, new_hi) > MAX_COMBINE_BYTES:
                    break
                group.append(cand)
                span[0], span[1] = new_lo, new_hi
                j += 1
            if len(group) >= 2 and _byte_coverage_ok(group):
                _rewrite_store_group(fn, bb, group, span, replacements, result)
                i = j
            else:
                i += 1


def _store_path_clear(bb: BasicBlock, group: List[_Access], cand: _Access,
                      aliases) -> bool:
    """No head movement / release between the group's first store and the
    candidate, and no load reading bytes buffered by earlier members
    (their memory write is deferred to the merged store's position)."""
    first = group[0].index
    buffered = [(g.bit_off, g.bit_end) for g in group]
    cls = group[0].cls
    for instr in bb.instrs[first + 1 : cand.index]:
        if mutates_class(instr, aliases, cls):
            return False
        if isinstance(instr, (I.PktLoadField, I.PktLoadWords)) and isinstance(
            instr.ph, Temp
        ) and aliases.same(instr.ph, cls):
            if isinstance(instr, I.PktLoadWords):
                lo, hi = instr.byte_off * 8, (instr.byte_off + instr.nwords * 4) * 8
            else:
                lo, hi = instr.bit_off, instr.bit_off + instr.bit_width
            for blo, bhi in buffered:
                if lo < bhi and blo < hi:
                    return False
    return True


def _byte_coverage_ok(group: List[_Access]) -> bool:
    """Every byte touched by the group must be fully covered (the merged
    store masks at byte granularity)."""
    bits = set()
    for acc in group:
        bits.update(acc.covered_bits())
    for byte in {b // 8 for b in bits}:
        if not all(byte * 8 + k in bits for k in range(8)):
            return False
    return True


def _store_segments(fn: IRFunction, seq: List[I.Instr], acc: _Access):
    """Decompose one store access into (bit_off, width, value, value_width)
    segments. Field stores are one segment; wide stores contribute one
    segment per maximal run of masked bytes in each word (the run is
    pre-extracted into a temp)."""
    if not acc.wide:
        width = acc.bit_width
        return [(acc.bit_off, width, acc.instr.value, width)]
    segments = []
    instr: I.PktStoreWords = acc.instr  # type: ignore[assignment]
    for i in range(instr.nwords):
        mask = instr.byte_masks[i]
        if mask == 0:
            continue
        covered = [b for b in range(4) if mask & (1 << (3 - b))]
        runs = []
        start = covered[0]
        prev = covered[0]
        for b in covered[1:]:
            if b == prev + 1:
                prev = b
            else:
                runs.append((start, prev))
                start = prev = b
        runs.append((start, prev))
        for b0, b1 in runs:
            width = (b1 - b0 + 1) * 8
            # Right-align the run's bits within the word.
            shift = (3 - b1) * 8
            value: Operand = instr.values[i]
            if shift:
                t = fn.new_temp(T.U32)
                seq.append(I.BinOp("lshr", t, value, Const(shift)))
                value = t
            bit = (instr.byte_off + i * 4 + b0) * 8
            segments.append((bit, width, value, width))
    return segments


def _rewrite_store_group(fn: IRFunction, bb: BasicBlock, group: List[_Access],
                         span, replacements, result: PacResult) -> None:
    start_byte = (span[0] // 32) * 4
    end_byte = ((span[1] + 31) // 32) * 4
    nwords = (end_byte - start_byte) // 4
    last = group[-1]

    seq: List[I.Instr] = []
    all_segments = []
    for acc in group:
        all_segments.extend(_store_segments(fn, seq, acc))

    values: List[Operand] = []
    masks: List[int] = []
    for wi in range(nwords):
        acc_parts: List[Operand] = []
        word_lo = start_byte * 8 + wi * 32
        word_hi = word_lo + 32
        mask = 0
        for seg_off, seg_width, seg_value, _vw in all_segments:
            ov_lo = max(seg_off, word_lo)
            ov_hi = min(seg_off + seg_width, word_hi)
            if ov_lo >= ov_hi:
                continue
            part = _segment_part(fn, seq, seg_off, seg_width, seg_value,
                                 ov_lo, ov_hi, word_lo)
            acc_parts.append(part)
            for bit in range(ov_lo, ov_hi):
                byte_in_word = (bit - word_lo) // 8
                mask |= 1 << (3 - byte_in_word)
        if not acc_parts:
            values.append(Const(0))
            masks.append(0)
            continue
        word_val = acc_parts[0]
        for part in acc_parts[1:]:
            merged = fn.new_temp(T.U32)
            seq.append(I.BinOp("or", merged, word_val, part))
            word_val = merged
        values.append(word_val)
        masks.append(mask)

    wide = I.PktStoreWords(last.instr.ph, start_byte, nwords, values, masks)
    wide.copy_annotations_from(last.instr)
    wide.c_offset_bits = getattr(last.instr, "c_offset_bits", None)
    wide.c_alignment = getattr(last.instr, "c_alignment", None)
    seq.append(wide)

    for acc in group:
        replacements.setdefault(bb, {})[acc.index] = [] if acc is not last else seq
    result.wide_stores += 1
    result.combined_stores += len(group)
    obs_ledger.get_ledger().record(
        "pac", fn.name, "combined_stores",
        reason="%d packet stores merged into one %d-word masked store"
               % (len(group), nwords),
        loc=obs_ledger.loc_str(last.instr.loc),
        members=len(group), nwords=nwords, start_byte=start_byte)


def _segment_part(fn: IRFunction, seq: List[I.Instr], seg_off: int,
                  seg_width: int, value: Operand,
                  ov_lo: int, ov_hi: int, word_lo: int) -> Operand:
    """The contribution of one stored segment to one 32-bit word: the
    segment's bits in [ov_lo, ov_hi) positioned at the right bit offsets.
    ``value`` holds the segment right-aligned (LSBs)."""
    width = seg_width
    # Bits of the segment (0 = MSB) that land in this word:
    f_hi = ov_hi - seg_off
    nbits = ov_hi - ov_lo
    wide = width > 32
    vtype = T.U64 if wide else T.U32

    # part = (value >> (width - f_hi)) & mask(nbits)
    drop = width - f_hi
    part: Operand = value
    if drop:
        t = fn.new_temp(vtype)
        seq.append(I.BinOp("lshr", t, part, Const(drop)))
        part = t
    if nbits < 32 or wide:
        t = fn.new_temp(T.U32)
        seq.append(I.BinOp("and", t, part,
                           Const((1 << nbits) - 1, T.U64 if wide else T.U32)))
        part = t
    # Position within the word (MSB-first): left shift by 32 - (ov_hi - word_lo).
    lshift = 32 - (ov_hi - word_lo)
    if lshift:
        t = fn.new_temp(T.U32)
        seq.append(I.BinOp("shl", t, part, Const(lshift)))
        part = t
    return part


# -- global (application-data) load combining -----------------------------------------


def _single_defs_of(fn: IRFunction):
    from collections import Counter

    counts = Counter()
    defs = {}
    for instr in fn.all_instrs():
        for d in instr.defs():
            counts[d] += 1
            defs[d] = instr
    return {t: i for t, i in defs.items() if counts[t] == 1}


def _normalize_offset(op, single_defs, depth: int = 0):
    """Decompose an offset operand into (base_key, constant byte delta):
    walks single-definition chains through `+ const` and `<< const`, so
    ``(row + 3) << 2`` and ``(row + 7) << 2`` share a base and differ by
    a known 16 bytes."""
    if isinstance(op, Const):
        return ("c",), op.value
    if depth > 6 or not isinstance(op, Temp):
        return ("t", id(op)), 0
    d = single_defs.get(op)
    if isinstance(d, I.BinOp) and d.op == "add":
        if isinstance(d.b, Const):
            key, delta = _normalize_offset(d.a, single_defs, depth + 1)
            return key, delta + d.b.value
        if isinstance(d.a, Const):
            key, delta = _normalize_offset(d.b, single_defs, depth + 1)
            return key, delta + d.a.value
    if isinstance(d, I.BinOp) and d.op == "shl" and isinstance(d.b, Const):
        key, delta = _normalize_offset(d.a, single_defs, depth + 1)
        return ("shl", key, d.b.value), delta << d.b.value
    return ("t", id(op)), 0


def _combine_global_loads(fn: IRFunction, result: PacResult) -> None:
    """Coalesce same-block 32-bit loads of one global whose offsets share
    a dynamic base and differ by known constants into one wide access."""
    single_defs = _single_defs_of(fn)
    for bb in fn.blocks:
        groups = {}  # (g, base_key) -> list of (index, instr, delta)
        rewrites = []  # finished groups

        def flush(key=None):
            keys = [key] if key is not None else list(groups)
            for k in keys:
                group = groups.pop(k, None)
                if group and len(group) >= 2:
                    rewrites.append(group)

        for idx, instr in enumerate(bb.instrs):
            if isinstance(instr, I.LoadG) and instr.width == 4:
                base_key, delta = _normalize_offset(instr.offset, single_defs)
                if delta % 4 == 0:
                    gkey = (instr.g, base_key)
                    group = groups.setdefault(gkey, [])
                    deltas = [d for _, _, d in group] + [delta]
                    if max(deltas) - min(deltas) + 4 <= MAX_GLOBAL_COMBINE_BYTES:
                        group.append((idx, instr, delta))
                    else:
                        flush(gkey)
                        groups[gkey] = [(idx, instr, delta)]
                    continue
            if isinstance(instr, I.StoreG):
                flush()  # conservative: any store may alias a pending group
            elif isinstance(instr, (I.Call, I.LockAcquire, I.LockRelease)):
                flush()
        flush()

        if not rewrites:
            continue
        replacements = {}
        for group in rewrites:
            group.sort(key=lambda row: row[2])
            first_idx = min(idx for idx, _, _ in group)
            min_delta = group[0][2]
            max_delta = group[-1][2]
            nwords = (max_delta - min_delta) // 4 + 1
            g = group[0][1].g
            words = [fn.new_temp(T.U32, "gac_w%d" % i) for i in range(nwords)]
            seq = []
            # Base operand: the lowest-delta member's own offset value.
            anchor = group[0][1].offset
            anchor_owner_idx = group[0][0]
            if anchor_owner_idx != first_idx and isinstance(anchor, Temp):
                # The anchor temp is defined before its load, which may be
                # after first_idx; recompute from the first member instead.
                lead = next(row for row in group if row[0] == first_idx)
                base = fn.new_temp(T.U32, "gac_off")
                shift = lead[2] - min_delta
                seq.append(I.BinOp("sub", base, lead[1].offset, Const(shift)))
                anchor = base
            seq.append(I.LoadGWords(words, g, anchor, nwords))
            for idx, load, delta in group:
                word = words[(delta - min_delta) // 4]
                if idx == first_idx:
                    replacements[idx] = seq + [I.Assign(load.dst, word)]
                else:
                    replacements[idx] = [I.Assign(load.dst, word)]
            result.wide_global_loads += 1
            result.combined_global_loads += len(group)
            obs_ledger.get_ledger().record(
                "pac", "%s/%s" % (fn.name, g), "combined_global_loads",
                reason="%d loads of %s coalesced into one %d-word access"
                       % (len(group), g, nwords),
                loc=obs_ledger.loc_str(group[0][1].loc),
                members=len(group), nwords=nwords)
        new_instrs = []
        for idx, instr in enumerate(bb.instrs):
            if idx in replacements:
                new_instrs.extend(replacements[idx])
            else:
                new_instrs.append(instr)
        bb.instrs = new_instrs
