"""Structured observability for the compiler and the simulated chip.

Usage::

    from repro import obs

    reg = obs.enable()                      # or REPRO_OBS=1 in the env
    result = compile_baker(src, opts, trace)
    run = run_on_simulator(result, trace,
                           metrics_jsonl="metrics.jsonl")
    # then: python -m repro.obs.report metrics.jsonl

The registry is process-global and *disabled* by default; every
instrumentation site degrades to a no-op (shared :data:`NULL` metric)
when it is off. See DESIGN.md section 7.
"""

from repro.obs.metrics import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    Series,
    Timer,
    disable,
    enable,
    get_registry,
    is_enabled,
    scoped_registry,
)
from repro.obs.sim import SimSampler, record_run_summary
from repro.obs.telemetry import ir_counts, record_ir_stage, record_opt_results

# repro.obs.trace / repro.obs.ledger re-exports are lazy (PEP 562): an
# eager import here would leave the submodule in sys.modules before
# runpy executes it, making ``python -m repro.obs.trace export`` (or
# ``python -m repro.obs.ledger``) warn at startup.
_TRACE_EXPORTS = frozenset([
    "PacketTracer",
    "capture_compile_spans",
    "compile_stage",
    "drain_compile_spans",
    "inject_compile_spans",
    "record_trace_summary",
])

# Same PEP 562 treatment for the stall-cycle attribution profiler.
_PROFILE_EXPORTS = frozenset([
    "StallProfiler",
    "aggregate_attribution",
    "attribution_shares",
    "bottleneck_verdict",
    "channel_utilization",
    "occupancy_cell",
])

# Same PEP 562 treatment for repro.obs.timeseries (keeps the windowed
# observability machinery out of processes that never use it).
_TIMESERIES_EXPORTS = frozenset([
    "QuantileSketch",
    "StreamingQuantile",
    "TimeseriesCollector",
    "load_timeseries",
    "update_impact",
    "window_drops",
])

# The ledger has its own enable/disable pair, so those are re-exported
# under qualified names (enable_ledger / disable_ledger / ledger_enabled).
_LEDGER_EXPORTS = {
    "Decision": "Decision",
    "DecisionLedger": "DecisionLedger",
    "compile_report": "compile_report",
    "decision_counts": "decision_counts",
    "disable_ledger": "disable",
    "enable_ledger": "enable",
    "get_ledger": "get_ledger",
    "ledger_enabled": "is_enabled",
    "write_compile_report": "write_compile_report",
}


def __getattr__(name):
    if name in _TRACE_EXPORTS:
        from repro.obs import trace

        return getattr(trace, name)
    if name in _PROFILE_EXPORTS:
        from repro.obs import profile

        return getattr(profile, name)
    if name in _TIMESERIES_EXPORTS:
        from repro.obs import timeseries

        return getattr(timeseries, name)
    if name in _LEDGER_EXPORTS:
        from repro.obs import ledger

        return getattr(ledger, _LEDGER_EXPORTS[name])
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "PacketTracer",
    "capture_compile_spans",
    "compile_stage",
    "drain_compile_spans",
    "inject_compile_spans",
    "record_trace_summary",
    "NULL",
    "Counter",
    "Decision",
    "DecisionLedger",
    "compile_report",
    "decision_counts",
    "disable_ledger",
    "enable_ledger",
    "get_ledger",
    "ledger_enabled",
    "write_compile_report",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "QuantileSketch",
    "Series",
    "SimSampler",
    "StallProfiler",
    "StreamingQuantile",
    "Timer",
    "TimeseriesCollector",
    "aggregate_attribution",
    "attribution_shares",
    "bottleneck_verdict",
    "channel_utilization",
    "occupancy_cell",
    "load_timeseries",
    "update_impact",
    "window_drops",
    "disable",
    "enable",
    "get_registry",
    "ir_counts",
    "is_enabled",
    "record_ir_stage",
    "record_opt_results",
    "record_run_summary",
    "scoped_registry",
]
