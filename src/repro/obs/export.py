"""Chrome trace-event JSON export for packet traces.

Converts the raw events recorded by :class:`repro.obs.trace.PacketTracer`
into the Chrome trace-event format (the JSON flavor Perfetto and
chrome://tracing load directly). Track layout:

* pid 0 ``compiler``  -- compile-pipeline stages (wall clock, B/E pairs)
* pid 1 ``rings``     -- one thread row per ring; queue-wait rendered as
  async ``b``/``e`` spans (FIFO spans overlap without nesting, which
  synchronous B/E events cannot express)
* pid 2 ``packets``   -- one async span per packet lifecycle
  (Rx arrival -> Tx/drop), plus instant events for Rx drops
* pid 3 ``xscale``    -- instant events for XScale dispatches
* pid 4 ``windows``   -- optional (pass ``windows=``): per-window
  counter tracks (rate/p99/drops) from a
  :class:`repro.obs.timeseries.TimeseriesCollector`, plus instant
  events marking control-plane updates
* pid 5 ``profile``   -- optional (pass ``profile=``): per-ME occupancy
  fraction and per-channel queue-backlog counter tracks from a
  :class:`repro.obs.profile.StallProfiler`'s time samples
* pid 10+i ``ME<i>``  -- one thread row per hardware thread; PPF
  execution spans as synchronous B/E pairs (threads are non-preemptive,
  so per-thread spans never overlap)

Timestamps are microseconds (ME cycles at 600 MHz); compile-stage spans
are rebased so the first stage starts at t=0 on the same timeline.

Every begin has a matching end: unmatched opens (packets still in
flight, rings still holding handles when the dump was cut) are closed at
the final timestamp, and the event list is emitted in non-decreasing
timestamp order.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ixp.memory import ME_HZ

COMPILER_PID = 0
RINGS_PID = 1
PACKETS_PID = 2
XSCALE_PID = 3
WINDOWS_PID = 4
PROFILE_PID = 5
ME_PID_BASE = 10

#: Simulated-cycles -> trace microseconds.
_US_PER_CYCLE = 1e6 / ME_HZ


def _cycles_us(t: float) -> float:
    return t * _US_PER_CYCLE


def chrome_trace_from_events(
    events: Iterable[Dict[str, object]],
    compile_spans: Optional[List[Tuple[str, Dict[str, object],
                                       float, float]]] = None,
    windows: Optional[List[Dict[str, object]]] = None,
    profile: Optional[List[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Build a Chrome trace-event document from raw event dicts.

    ``windows`` takes a :class:`TimeseriesCollector`'s window records
    and adds a counter track (forwarding rate, p99 latency, drops, one
    sample per window at its start) plus instant markers for every
    annotated control-plane event.

    ``profile`` takes a :class:`StallProfiler`'s time samples
    (``profiler.samples``, recorded when the profiler was built with
    ``sample_cycles=``) and adds counter tracks: per-ME busy fraction
    over each sample interval, and each memory channel's queued-ahead
    backlog (cycles of work already committed beyond the sample time).
    """
    out: List[dict] = []
    seq = [0]

    def emit(ev: dict, ts: float) -> None:
        ev["ts"] = ts
        ev["_seq"] = seq[0]
        seq[0] += 1
        out.append(ev)

    meta_done = set()

    def name_track(pid: int, pname: str, tid: Optional[int] = None,
                   tname: Optional[str] = None) -> None:
        if pid not in meta_done:
            meta_done.add(pid)
            out.append({"ph": "M", "name": "process_name", "pid": pid,
                        "tid": 0, "ts": 0, "_seq": -1,
                        "args": {"name": pname}})
        if tid is not None and (pid, tid) not in meta_done:
            meta_done.add((pid, tid))
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "ts": 0, "_seq": -1,
                        "args": {"name": tname or str(tid)}})

    ring_tids: Dict[str, int] = {}

    def ring_tid(ring: str) -> int:
        tid = ring_tids.get(ring)
        if tid is None:
            tid = len(ring_tids)
            ring_tids[ring] = tid
            name_track(RINGS_PID, "rings", tid, ring)
        return tid

    # -- open-span bookkeeping so every begin gets an end -------------------------
    open_sync: Dict[Tuple[int, int], List[dict]] = {}   # (pid,tid) -> B stack
    open_async: Dict[str, dict] = {}                    # id -> b event
    # (ring, pkt) -> stack of async ids (a packet can re-enter a ring).
    ring_occ: Dict[Tuple[str, int], List[str]] = {}
    ring_seq = [0]
    max_ts = [0.0]

    def sync_begin(pid: int, tid: int, name: str, ts: float,
                   args: Optional[dict] = None) -> None:
        ev = {"ph": "B", "pid": pid, "tid": tid, "name": name}
        if args:
            ev["args"] = args
        emit(ev, ts)
        open_sync.setdefault((pid, tid), []).append(ev)

    def sync_end(pid: int, tid: int, ts: float,
                 args: Optional[dict] = None) -> None:
        stack = open_sync.get((pid, tid))
        if not stack:
            return  # end without begin: drop rather than unbalance
        stack.pop()
        ev = {"ph": "E", "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        emit(ev, ts)

    def async_begin(pid: int, tid: int, cat: str, name: str, aid: str,
                    ts: float, args: Optional[dict] = None) -> None:
        ev = {"ph": "b", "pid": pid, "tid": tid, "cat": cat,
              "name": name, "id": aid}
        if args:
            ev["args"] = args
        emit(ev, ts)
        open_async[aid] = ev

    def async_end(pid: int, tid: int, cat: str, name: str, aid: str,
                  ts: float, args: Optional[dict] = None) -> None:
        if open_async.pop(aid, None) is None:
            return
        ev = {"ph": "e", "pid": pid, "tid": tid, "cat": cat,
              "name": name, "id": aid}
        if args:
            ev["args"] = args
        emit(ev, ts)

    # -- compile-stage spans ------------------------------------------------------
    spans = compile_spans or []
    if spans:
        name_track(COMPILER_PID, "compiler", 0, "pipeline")
        t_base = min(t0 for _, _, t0, _ in spans)
        for stage, labels, t0, t1 in spans:
            args = {"stage": stage}
            args.update({str(k): v for k, v in labels.items()})
            sync_begin(COMPILER_PID, 0, stage, (t0 - t_base) * 1e6, args)
            sync_end(COMPILER_PID, 0, (t1 - t_base) * 1e6)
            max_ts[0] = max(max_ts[0], (t1 - t_base) * 1e6)

    # -- simulator events ---------------------------------------------------------
    name_track(PACKETS_PID, "packets")
    for ev in events:
        kind = ev.get("kind")
        ts = _cycles_us(float(ev.get("t", 0.0)))
        max_ts[0] = max(max_ts[0], ts)
        pkt = ev.get("pkt")

        if kind == "pkt_begin":
            async_begin(PACKETS_PID, 0, "pkt", "pkt", "p%s" % pkt, ts,
                        {"origin": ev.get("origin"),
                         "handle": ev.get("handle")})
        elif kind == "pkt_end":
            args = {"outcome": ev.get("outcome")}
            if "cause" in ev:
                args["cause"] = ev["cause"]
            if "latency_cycles" in ev:
                args["latency_cycles"] = ev["latency_cycles"]
            async_end(PACKETS_PID, 0, "pkt", "pkt", "p%s" % pkt, ts, args)
        elif kind == "ring_enq":
            ring = str(ev.get("ring"))
            tid = ring_tid(ring)
            ring_seq[0] += 1
            aid = "q%s.%d" % (pkt, ring_seq[0])
            ring_occ.setdefault((ring, pkt), []).append(aid)
            async_begin(RINGS_PID, tid, "ring", ring, aid, ts,
                        {"pkt": pkt})
        elif kind == "ring_deq":
            ring = str(ev.get("ring"))
            tid = ring_tid(ring)
            stack = ring_occ.get((ring, pkt))
            if stack:
                async_end(RINGS_PID, tid, "ring", ring, stack.pop(0), ts)
        elif kind == "span_begin":
            me = int(ev.get("me", 0))
            thread = int(ev.get("thread", 0))
            name_track(ME_PID_BASE + me, "ME%d" % me, thread,
                       "thread %d" % thread)
            sync_begin(ME_PID_BASE + me, thread,
                       "ppf@%s" % ev.get("ring"), ts, {"pkt": pkt})
        elif kind == "span_end":
            me = int(ev.get("me", 0))
            thread = int(ev.get("thread", 0))
            sync_end(ME_PID_BASE + me, thread, ts,
                     {"disposition": ev.get("disposition")})
        elif kind == "rx_drop":
            emit({"ph": "i", "pid": PACKETS_PID, "tid": 0, "s": "p",
                  "name": "rx_drop", "args": {"cause": ev.get("cause")}},
                 ts)
        elif kind == "xscale":
            name_track(XSCALE_PID, "xscale", 0, "dispatch")
            emit({"ph": "i", "pid": XSCALE_PID, "tid": 0, "s": "t",
                  "name": "dispatch", "args": {"pkt": pkt,
                                               "ring": ev.get("ring")}},
                 ts)
        # unknown kinds (e.g. trace_meta) are skipped

    # -- windowed time series (repro.obs.timeseries) ------------------------------
    if windows:
        from repro.obs.timeseries import window_drops

        name_track(WINDOWS_PID, "windows", 0, "timeseries")
        for w in windows:
            ts = _cycles_us(float(w.get("t_start", 0.0)))
            max_ts[0] = max(max_ts[0], ts)
            lat = w.get("latency") or {}
            emit({"ph": "C", "pid": WINDOWS_PID, "tid": 0,
                  "name": "window",
                  "args": {"rate_gbps": w.get("rate_gbps", 0.0),
                           "p99_cycles": lat.get("p99", 0.0),
                           "drops": window_drops(w)}}, ts)
            for ev in w.get("events") or []:
                ev_ts = _cycles_us(float(ev.get("t", 0.0)))
                max_ts[0] = max(max_ts[0], ev_ts)
                args = {k: v for k, v in ev.items() if k != "t"}
                emit({"ph": "i", "pid": WINDOWS_PID, "tid": 0, "s": "g",
                      "name": str(ev.get("kind", "event")),
                      "args": args}, ev_ts)

    # -- stall-profiler occupancy samples (repro.obs.profile) ---------------------
    if profile:
        name_track(PROFILE_PID, "profile", 0, "ME occupancy")
        name_track(PROFILE_PID, "profile", 1, "memory queues")
        prev_t = 0.0
        prev_busy: List[float] = []
        for s in profile:
            t = float(s.get("t", 0.0))
            ts = _cycles_us(t)
            max_ts[0] = max(max_ts[0], ts)
            busy = [float(b) for b in s.get("me_busy") or []]
            dt = t - prev_t
            if dt > 0 and busy:
                if len(prev_busy) < len(busy):
                    prev_busy = prev_busy + [0.0] * (len(busy)
                                                     - len(prev_busy))
                emit({"ph": "C", "pid": PROFILE_PID, "tid": 0,
                      "name": "me_occupancy",
                      "args": {"me%d" % i:
                               round((b - prev_busy[i]) / dt, 4)
                               for i, b in enumerate(busy)}}, ts)
            prev_t, prev_busy = t, busy
            queue = s.get("queue") or {}
            if queue:
                emit({"ph": "C", "pid": PROFILE_PID, "tid": 1,
                      "name": "mem_queue_backlog",
                      "args": {str(ch): queue[ch]
                               for ch in sorted(queue)}}, ts)

    # -- balance pass: close anything still open at the last timestamp ------------
    end_ts = max_ts[0]
    for (pid, tid), stack in sorted(open_sync.items()):
        for _ in range(len(stack)):
            stack.pop()
            emit({"ph": "E", "pid": pid, "tid": tid,
                  "args": {"disposition": "cut"}}, end_ts)
    for aid, bev in sorted(open_async.items()):
        emit({"ph": "e", "pid": bev["pid"], "tid": bev["tid"],
              "cat": bev["cat"], "name": bev["name"], "id": aid,
              "args": {"disposition": "cut"}}, end_ts)
    open_async.clear()

    # Metadata first, then events in non-decreasing timestamp order
    # (generation order breaks ties so begins precede their ends).
    out.sort(key=lambda e: (e["ts"], e["_seq"]))
    for ev in out:
        del ev["_seq"]
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated ME cycles @ %g MHz"
                                   % (ME_HZ / 1e6)}}


def write_chrome_trace(
    path: str,
    events: Iterable[Dict[str, object]],
    compile_spans: Optional[List[Tuple[str, Dict[str, object],
                                       float, float]]] = None,
    windows: Optional[List[Dict[str, object]]] = None,
    profile: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Write a Chrome trace-event JSON file; returns the path."""
    doc = chrome_trace_from_events(events, compile_spans, windows=windows,
                                   profile=profile)
    d = os.path.dirname(os.path.abspath(path))
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path
