"""Compiler-side observability: per-stage IR size tracking and the
opt-pass counters reported by PAC / SOAR / PHR / SWC.

:func:`record_ir_stage` snapshots module size after each pipeline stage
(gauges labelled ``stage=...``), so the report can show the IR deltas
each stage produced. :func:`record_opt_results` flattens the result
dataclasses the packet optimizations already return into counters.
"""

from __future__ import annotations

from typing import Tuple

from repro.obs.metrics import MetricsRegistry


def ir_counts(mod) -> Tuple[int, int, int]:
    """(functions, blocks, instructions) for an IR module."""
    n_fns = len(mod.functions)
    n_blocks = 0
    n_instrs = 0
    for fn in mod.functions.values():
        n_blocks += len(fn.blocks)
        for bb in fn.blocks:
            n_instrs += len(bb.instrs)
    return n_fns, n_blocks, n_instrs


def record_ir_stage(reg: MetricsRegistry, stage: str, mod) -> None:
    """Record module size after ``stage`` (no-op when ``reg`` is
    disabled -- the counting walk is skipped entirely)."""
    if not reg.enabled:
        return
    n_fns, n_blocks, n_instrs = ir_counts(mod)
    reg.gauge("compile.ir.functions", stage=stage).set(n_fns)
    reg.gauge("compile.ir.blocks", stage=stage).set(n_blocks)
    reg.gauge("compile.ir.instrs", stage=stage).set(n_instrs)


def record_opt_results(reg: MetricsRegistry, result) -> None:
    """Flatten the PAC/SOAR/PHR/SWC result objects on a CompileResult
    into ``opt.*`` counters/gauges."""
    if not reg.enabled:
        return
    pac = result.pac_result
    if pac is not None:
        reg.counter("opt.pac.combined_loads").inc(pac.combined_loads)
        reg.counter("opt.pac.combined_stores").inc(pac.combined_stores)
        reg.counter("opt.pac.wide_loads").inc(pac.wide_loads)
        reg.counter("opt.pac.wide_stores").inc(pac.wide_stores)
        reg.counter("opt.pac.combined_global_loads").inc(pac.combined_global_loads)
        reg.counter("opt.pac.wide_global_loads").inc(pac.wide_global_loads)
    soar = result.soar_result
    if soar is not None:
        reg.counter("opt.soar.resolved_accesses").inc(soar.resolved_accesses)
        reg.counter("opt.soar.total_accesses").inc(soar.total_accesses)
        reg.gauge("opt.soar.resolution_rate").set(round(soar.resolution_rate, 4))
    phr = result.phr_result
    if phr is not None:
        reg.counter("opt.phr.localized_meta_fields").inc(
            len(phr.localized_meta_fields))
        reg.counter("opt.phr.elided_encaps").inc(phr.elided_encaps)
        reg.counter("opt.phr.syncs_inserted").inc(phr.syncs_inserted)
    swc = result.swc_result
    if swc is not None:
        reg.counter("opt.swc.cached_globals").inc(len(swc.cached))
        reg.counter("opt.swc.rejected_globals").inc(len(swc.rejected))
        reg.counter("opt.swc.rewritten_loads").inc(swc.rewritten_loads)
        reg.counter("opt.swc.instrumented_stores").inc(swc.instrumented_stores)
