"""Compilation decision ledger: explainable optimization provenance.

Every optimization site in the compiler emits a structured
:class:`Decision` -- what pass looked at what subject, what it decided,
why, and the numeric evidence behind the choice (PAC group sizes, SWC
Equation-2 inputs, aggregation merge costs, register-allocator spills,
control-store budget fits...). The ledger answers "*why* did the
Figure 13 curve move" where the metrics registry only answers "*that*
it moved".

Like the metrics registry and the packet tracer, the ledger is **pure
observation**: it is disabled by default, every hook is guarded on
:attr:`DecisionLedger.enabled`, and recording never feeds back into
compilation (ledger-on and ledger-off compiles are bit-identical --
proven in ``tests/test_ledger.py``).

Artifacts:

* :func:`compile_report` / :func:`write_compile_report` render a
  :class:`~repro.compiler.CompileResult` (which carries the decisions
  made while compiling it) into a deterministic, diffable
  ``compile_report.json``.
* ``python -m repro.obs.ledger --app l3switch --level SWC -o
  compile_report.json`` compiles an app with the ledger enabled and
  writes the report (the CI ``obs-diff`` job uses this).
* ``python -m repro.obs.report explain compile_report.json`` renders a
  human-readable view; ``python -m repro.obs.diff A B`` compares two
  reports (or two ``BENCH_*.json`` runs) and gates regressions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment switch mirroring ``REPRO_OBS`` for the metrics registry.
_ENV_FLAG = "REPRO_OBS_LEDGER"

#: Report schema version (bump when the JSON layout changes shape).
REPORT_VERSION = 1


def loc_str(loc) -> Optional[str]:
    """Render a Baker :class:`~repro.baker.source.SourceLocation` as a
    stable ``file:line`` string (column dropped: it adds diff noise
    without adding provenance)."""
    if loc is None:
        return None
    return "%s:%d" % (loc.filename, loc.line)


def _norm(value):
    """Normalize one evidence value for deterministic JSON output."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        return round(value, 6)
    return value


@dataclass
class Decision:
    """One recorded optimization decision."""

    seq: int
    pass_name: str  # "pac", "soar", "swc", "aggregation", "regalloc", ...
    subject: str  # what was decided about (global, function, site, ...)
    verdict: str  # "accepted", "rejected", "merged", "spilled", ...
    reason: str = ""
    evidence: Dict[str, object] = field(default_factory=dict)
    loc: Optional[str] = None  # "file:line" of the driving source

    def to_record(self) -> Dict[str, object]:
        rec: Dict[str, object] = {
            "seq": self.seq,
            "pass": self.pass_name,
            "subject": self.subject,
            "verdict": self.verdict,
        }
        if self.reason:
            rec["reason"] = self.reason
        if self.evidence:
            rec["evidence"] = dict(self.evidence)
        if self.loc is not None:
            rec["loc"] = self.loc
        return rec


class DecisionLedger:
    """Append-only store of :class:`Decision` records.

    Disabled by default: :meth:`record` is a cheap early-return, and
    instrumentation sites additionally guard any non-trivial evidence
    computation on :attr:`enabled` so a disabled ledger costs nothing.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.decisions: List[Decision] = []

    def record(self, pass_name: str, subject: str, verdict: str,
               reason: str = "", loc: Optional[str] = None,
               **evidence) -> None:
        if not self.enabled:
            return
        ev = {k: _norm(v) for k, v in sorted(evidence.items())
              if v is not None}
        self.decisions.append(
            Decision(len(self.decisions), pass_name, subject, verdict,
                     reason, ev, loc)
        )

    # -- slicing (CompileResult captures "the decisions of this compile") --------

    def mark(self) -> int:
        return len(self.decisions)

    def since(self, mark: int) -> List[Decision]:
        return self.decisions[mark:]

    # -- export ------------------------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        return [d.to_record() for d in self.decisions]

    def merge_records(self, records: List[Dict[str, object]]) -> None:
        """Append JSON-ready decision records (a worker process's
        :meth:`records` slice shipped across a pickle boundary) with
        sequence numbers re-based onto this ledger."""
        if not self.enabled:
            return
        for rec in records:
            self.decisions.append(Decision(
                len(self.decisions), rec.get("pass", "?"),
                rec.get("subject", "?"), rec.get("verdict", "?"),
                rec.get("reason", ""), dict(rec.get("evidence") or {}),
                rec.get("loc")))

    def clear(self) -> None:
        self.decisions = []


def decision_counts(decisions: List[Decision]) -> Dict[str, Dict[str, int]]:
    """{pass: {verdict: count}} roll-up of a decision list."""
    counts: Dict[str, Dict[str, int]] = {}
    for d in decisions:
        counts.setdefault(d.pass_name, {}).setdefault(d.verdict, 0)
        counts[d.pass_name][d.verdict] += 1
    return counts


# -- process-global ledger -------------------------------------------------------


_GLOBAL = DecisionLedger(enabled=bool(os.environ.get(_ENV_FLAG)))


def get_ledger() -> DecisionLedger:
    return _GLOBAL


def enable() -> DecisionLedger:
    _GLOBAL.enabled = True
    return _GLOBAL


def disable() -> DecisionLedger:
    _GLOBAL.enabled = False
    return _GLOBAL


def is_enabled() -> bool:
    return _GLOBAL.enabled


# -- compile report --------------------------------------------------------------


def _opt_section(result) -> Dict[str, object]:
    out: Dict[str, object] = {}
    pac = result.pac_result
    out["pac"] = None if pac is None else {
        "combined_loads": pac.combined_loads,
        "combined_stores": pac.combined_stores,
        "wide_loads": pac.wide_loads,
        "wide_stores": pac.wide_stores,
        "combined_global_loads": pac.combined_global_loads,
        "wide_global_loads": pac.wide_global_loads,
    }
    soar = result.soar_result
    out["soar"] = None if soar is None else {
        "resolved_accesses": soar.resolved_accesses,
        "total_accesses": soar.total_accesses,
        "resolution_rate": round(soar.resolution_rate, 6),
        "channel_values": {
            name: list(value)
            for name, value in sorted(soar.channel_values.items())
        },
    }
    phr = result.phr_result
    out["phr"] = None if phr is None else {
        "localized_meta_fields": sorted(phr.localized_meta_fields),
        "elided_encaps": phr.elided_encaps,
        "syncs_inserted": phr.syncs_inserted,
    }
    swc = result.swc_result
    out["swc"] = None if swc is None else {
        "cached": [
            {"name": c.name, "gid": c.gid, "line_bytes": c.line_bytes,
             "line_words": c.line_words}
            for c in swc.cached
        ],
        "rejected": dict(sorted(swc.rejected.items())),
        "rewritten_loads": swc.rewritten_loads,
        "instrumented_stores": swc.instrumented_stores,
        "requested_check_period": swc.requested_check_period,
        "check_period": swc.check_period,
        "eq2_min_check_rate": swc.eq2_min_check_rate,
    }
    return out


def compile_report(result, app: Optional[str] = None) -> Dict[str, object]:
    """Deterministic, diffable JSON-ready view of one compilation.

    Works with the ledger disabled too (the ``decisions`` list is then
    simply empty); nothing in here depends on wall-clock time, object
    identity, or iteration order of unordered containers.
    """
    from dataclasses import asdict

    from repro.obs.telemetry import ir_counts

    n_fns, n_blocks, n_instrs = ir_counts(result.mod)
    plan = result.plan
    aggregates = []
    for agg in sorted(plan.me_aggregates + plan.xscale_aggregates,
                      key=lambda a: a.name):
        aggregates.append({
            "name": agg.name,
            "target": agg.target,
            "ppfs": sorted(agg.ppfs),
            "me_count": agg.me_count,
            "cost": round(agg.cost, 4),
            "code_size_estimate": agg.code_size,
        })
    images = {}
    for name, image in sorted(result.images.items()):
        layout = image.stack_layout
        images[name] = {
            "code_size": image.code_size,
            "n_insns": len(image.insns),
            "functions": list(image.functions),
            "lm_stack_words": layout.lm_words_used if layout else 0,
            "sram_stack_words": layout.sram_words_used if layout else 0,
        }
    decisions = list(getattr(result, "decisions", []))
    report: Dict[str, object] = {
        "kind": "compile_report",
        "version": REPORT_VERSION,
        "level": result.opts.name,
        "options": asdict(result.opts),
        "ir": {"functions": n_fns, "blocks": n_blocks, "instrs": n_instrs},
        "plan": {
            "throughput_pps": round(plan.throughput_pps, 3),
            "aggregates": aggregates,
            "internal_channels": sorted(plan.internal_channels),
        },
        "fast_functions": sorted(result.fast_functions),
        "opt": _opt_section(result),
        "images": images,
        # seq is re-based to the slice so a report is independent of any
        # compilations that happened earlier in the same process.
        "decisions": [dict(d.to_record(), seq=i)
                      for i, d in enumerate(decisions)],
        "decision_counts": decision_counts(decisions),
    }
    if app is not None:
        report["app"] = app
    return report


def write_compile_report(result, path: str,
                         app: Optional[str] = None) -> str:
    """Write :func:`compile_report` as stable-keyed, indented JSON."""
    report = compile_report(result, app=app)
    d = os.path.dirname(os.path.abspath(path))
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- CLI: compile an app with the ledger on and write the report -----------------


def main(argv=None) -> int:
    import argparse
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.ledger",
        description="Compile a bundled app with the decision ledger "
                    "enabled and write a diffable compile_report.json.")
    ap.add_argument("--app", default="l3switch",
                    help="bundled application (default: %(default)s)")
    ap.add_argument("--level", default="SWC",
                    help="cumulative optimization level "
                         "(BASE/O1/O2/PAC/SOAR/PHR/SWC; default: %(default)s)")
    ap.add_argument("-o", "--output", default="compile_report.json",
                    help="output path (default: %(default)s)")
    ap.add_argument("--packets", type=int, default=200,
                    help="profiling trace length (default: %(default)s)")
    ap.add_argument("--seed", type=int, default=5,
                    help="profiling trace seed (default: %(default)s)")
    args = ap.parse_args(argv)

    from repro.apps import get_app
    from repro.compiler import compile_baker
    from repro.options import OPT_LEVELS, options_for

    level = args.level.upper().lstrip("+-")
    if level not in OPT_LEVELS:
        print("error: unknown level %r (choose from %s)"
              % (args.level, "/".join(OPT_LEVELS)), file=sys.stderr)
        return 1
    try:
        app = get_app(args.app)
    except KeyError:
        print("error: unknown app %r" % args.app, file=sys.stderr)
        return 1

    # Under ``python -m`` this file runs as ``__main__``; go through the
    # canonical module instance so the compiler's hooks see the same
    # global ledger we enable here.
    from repro.obs import ledger as canonical

    led = canonical.enable()
    mark = led.mark()
    trace = app.make_trace(args.packets, seed=args.seed)
    result = compile_baker(app.source, options_for(level), trace)
    path = write_compile_report(result, args.output, app=args.app)
    n = len(led.since(mark))
    print("%s: %d decisions across %d passes -> %s"
          % (args.app, n, len(decision_counts(result.decisions)), path))
    print("explain: python -m repro.obs.report explain %s" % path)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
