"""Simulator-side observability: periodic time-series sampling plus
end-of-run summary recording.

The sampler is *pulled* by :meth:`repro.ixp.chip.IXP2400.run` between
event dispatches instead of scheduling its own events, so attaching it
changes neither the event order nor the ``stop`` polling cadence --
enabled and disabled runs stay bit-identical (tested by
``tests/test_obs.py``).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: Default sampling period, in ME cycles (~33 us of simulated time).
SAMPLE_INTERVAL_CYCLES = 20_000.0


class SimSampler:
    """Samples ring occupancy and per-ME utilization over simulated time.

    Attach with ``chip.sampler = SimSampler(chip, registry)``; the chip
    calls :meth:`sample` once per elapsed ``next_t`` mark (looping to
    catch up after sparse event periods), passing the mark time itself
    so the series stays on a regular grid. Catch-up samples timestamp
    the *current* chip state at the missed mark -- an explicit
    approximation that beats silently skipping grid points.
    """

    def __init__(self, chip, registry: MetricsRegistry,
                 interval_cycles: float = SAMPLE_INTERVAL_CYCLES):
        self.chip = chip
        self.registry = registry
        self.interval = interval_cycles
        self.next_t = 0.0

    def sample(self, now: float) -> None:
        self.next_t = now + self.interval
        reg = self.registry
        chip = self.chip
        for name, ring in chip.rings.rings.items():
            reg.series("sim.ring_depth", ring=name).sample(now, len(ring.items))
        for me in chip.mes:
            if me.time > 0:
                util = (me.time - me.idle_time) / me.time
            else:
                util = 0.0
            reg.series("sim.me_util", me=me.index).sample(now, round(util, 4))


def record_run_summary(reg: MetricsRegistry, chip, rx, tx) -> None:
    """Record final ring / ME / memory-channel / Rx / Tx accounting after
    a simulation finishes. Reads only always-on counters kept by the
    simulator itself, so it works whether or not a sampler ran."""
    for name, ring in chip.rings.rings.items():
        reg.gauge("sim.ring.capacity", ring=name).set(ring.capacity)
        reg.gauge("sim.ring.depth", ring=name).set(len(ring.items))
        reg.gauge("sim.ring.max_depth", ring=name).set(ring.max_depth)
        reg.gauge("sim.ring.puts", ring=name).set(ring.puts)
        reg.gauge("sim.ring.gets", ring=name).set(ring.gets)
        reg.gauge("sim.ring.drops", ring=name).set(ring.drops)
        reg.gauge("sim.ring.empty_gets", ring=name).set(ring.empty_gets)

    for me in chip.mes:
        busy = me.time - me.idle_time
        util = busy / me.time if me.time > 0 else 0.0
        reg.gauge("sim.me.utilization", me=me.index).set(round(util, 6))
        reg.gauge("sim.me.executed_instrs", me=me.index).set(me.executed_instrs)

    for cname, channel in chip.memory.channels.items():
        reg.gauge("sim.mem.busy_cycles", channel=cname).set(
            round(channel.busy_time, 3))
        if chip.now > 0:
            reg.gauge("sim.mem.utilization", channel=cname).set(
                round(channel.busy_time / chip.now, 6))

    if rx is not None:
        reg.gauge("sim.rx.offered").set(rx.sent)
        reg.gauge("sim.rx.dropped", cause="freelist_empty").set(
            rx.dropped_freelist)
        reg.gauge("sim.rx.dropped", cause="ring_full").set(
            rx.dropped_ring_full)
        reg.gauge("sim.leaks", engine="rx", kind="buffer").set(rx.leaked_buffers)
        reg.gauge("sim.leaks", engine="rx", kind="meta").set(rx.leaked_meta)
    if tx is not None:
        reg.gauge("sim.tx.packets").set(tx.packets_out())
        reg.gauge("sim.tx.bytes").set(tx.bytes_out)
        reg.gauge("sim.leaks", engine="tx", kind="buffer").set(tx.leaked_buffers)
        reg.gauge("sim.leaks", engine="tx", kind="meta").set(tx.leaked_meta)

    reg.gauge("sim.cycles").set(chip.now)
