"""Stall-cycle attribution profiler (`repro.obs.profile`).

Classifies every simulated cycle of every ME thread into one of

* ``exec``        -- the thread was executing instructions,
* ``mem_scratch`` / ``mem_sram`` / ``mem_dram`` -- swapped out waiting on
  a memory reference, split by the *logical* channel the reference used
  (both physical SRAM channels report as ``mem_sram``; successful
  ring/atomic ops are scratch references and count as ``mem_scratch``),
* ``ring_empty``  -- the wait behind a ``ring_get`` that found the ring
  empty (an input-starved consumer polling),
* ``ring_full``   -- the wait behind a ``ring_put`` the ring rejected
  (back-pressure from a full downstream queue),
* ``ctx_arb``     -- voluntary yields,
* ``idle``        -- the residual: the ME clock advanced but this thread
  neither ran nor waited on anything it issued (no work available, or
  other threads held the engine).

Attribution is recorded at *event* time by hooks in both dispatch cores
(legacy handler table and predecoded fast path): a thread burst adds
``me.time`` deltas to ``exec``; a blocking instruction adds
``wake - issue_time`` to its category.  ``idle`` is computed as an exact
residual against the ME clock at snapshot time -- so per-thread
attribution sums to the ME's total simulated cycles by construction
(the invariant tests/test_profile.py asserts).  A thread whose final
wait extends past the end of the run has the overshoot clamped off its
last category.

The profiler also samples the memory channels (per-request queueing
delay in :meth:`MemorySystem.timed_*`) and the scratch rings (occupancy
after every put/get), and -- when built with ``sample_cycles`` -- records
a time series of per-ME busy cycles and per-channel queue backlog,
pulled by :meth:`IXP2400.run` through the same ``next_t`` catch-up
contract as the sampler and window hooks.

Like every obs layer before it the profiler is *pure observation*: off
by default, attached via :meth:`attach`, every hook guards with
``is not None``, and profiled runs are bit-identical to unprofiled ones
(tests/test_profile.py).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: Wait categories, in the fixed order used for residual computation,
#: payloads and reports (exec and idle bracket them).
WAIT_CATEGORIES = ("mem_scratch", "mem_sram", "mem_dram",
                   "ring_empty", "ring_full", "ctx_arb")

#: All attribution categories in report order.
CATEGORIES = ("exec",) + WAIT_CATEGORIES + ("idle",)

#: A physical channel is considered saturated (memory-bound) above this
#: busy fraction of the run.
SATURATION_UTILIZATION = 0.75

#: ring_empty share above which a cell is called input-starved.
STARVED_SHARE = 0.30

#: Default profile-sample spacing when time sampling is requested.
SAMPLE_INTERVAL_CYCLES = 20_000.0

#: Logical channel -> wait category / display name.
_CHANNEL_WAIT = {"scratch": "mem_scratch", "sram": "mem_sram",
                 "dram": "mem_dram"}
_CHANNEL_LABEL = {"scratch": "Scratch", "sram": "SRAM", "dram": "DRAM"}


class _ThreadAttribution:
    """Raw per-(ME, thread) accumulators."""

    __slots__ = ("exec_cycles", "wait", "blocks", "last_cat", "last_wake")

    def __init__(self):
        self.exec_cycles = 0.0
        self.wait: Dict[str, float] = {}
        self.blocks: Dict[str, int] = {}
        self.last_cat: Optional[str] = None
        self.last_wake = 0.0


class StallProfiler:
    """Per-thread stall attribution + channel/ring queue statistics.

    Attach with :meth:`attach`; read back with :meth:`snapshot` (a
    deterministic plain dict) after the run.  ``sample_cycles`` enables
    the optional time series (``samples``) for Perfetto counter tracks;
    without it the run-loop poll is a single comparison against +inf.
    """

    def __init__(self, sample_cycles: Optional[float] = None):
        self.chip = None
        self.threads: Dict[Tuple[int, int], _ThreadAttribution] = {}
        # channel name -> [requests, queue_wait_total, queue_wait_max]
        self.channel_stats: Dict[str, List[float]] = {}
        # ring name -> [ops, depth_total, depth_max]
        self.ring_stats: Dict[str, List[float]] = {}
        self.sample_cycles = sample_cycles
        self.samples: List[dict] = []
        self.next_t = float(sample_cycles) if sample_cycles else math.inf

    # -- attachment --------------------------------------------------------------

    def attach(self, chip) -> "StallProfiler":
        """Install the profiler on ``chip``: the MEs reach it through
        ``chip.profiler``, the memory system and every existing ring get
        a direct reference (rings created later simply go unsampled)."""
        self.chip = chip
        chip.profiler = self
        chip.memory.profiler = self
        for ring in chip.rings.rings.values():
            ring.profiler = self
        return self

    # -- hot-path hooks (called only when attached) -------------------------------

    def note_burst(self, me_index: int, t_index: int,
                   t0: float, t1: float) -> None:
        """A thread ran from ``t0`` to ``t1`` on the ME clock."""
        if t1 <= t0:
            return
        key = (me_index, t_index)
        ta = self.threads.get(key)
        if ta is None:
            ta = self.threads[key] = _ThreadAttribution()
        ta.exec_cycles += t1 - t0

    def note_block(self, me_index: int, t_index: int, cat: str,
                   t0: float, wake: float) -> None:
        """A thread blocked at ``t0`` until ``wake`` under ``cat``."""
        key = (me_index, t_index)
        ta = self.threads.get(key)
        if ta is None:
            ta = self.threads[key] = _ThreadAttribution()
        wait = ta.wait
        wait[cat] = wait.get(cat, 0.0) + (wake - t0)
        blocks = ta.blocks
        blocks[cat] = blocks.get(cat, 0) + 1
        ta.last_cat = cat
        ta.last_wake = wake

    def note_mem(self, channel: str, queued: float) -> None:
        """A memory request on physical ``channel`` waited ``queued``
        cycles behind earlier requests before the channel took it."""
        st = self.channel_stats.get(channel)
        if st is None:
            st = self.channel_stats[channel] = [0, 0.0, 0.0]
        st[0] += 1
        st[1] += queued
        if queued > st[2]:
            st[2] = queued

    def note_ring(self, name: str, depth: int) -> None:
        """Ring occupancy observed right after a put/get."""
        st = self.ring_stats.get(name)
        if st is None:
            st = self.ring_stats[name] = [0, 0.0, 0.0]
        st[0] += 1
        st[1] += depth
        if depth > st[2]:
            st[2] = depth

    # -- optional time sampling (pulled by chip.run) ------------------------------

    def tick(self, mark: float) -> None:
        """Record one occupancy/queue sample at ``mark`` and re-arm."""
        self.next_t = mark + float(self.sample_cycles)
        chip = self.chip
        if chip is None:
            return
        queue = {}
        for ch in chip.memory.channels.values():
            backlog = ch.next_free - mark
            queue[ch.name] = round(backlog, 3) if backlog > 0.0 else 0.0
        self.samples.append({
            "t": mark,
            "me_busy": [round(me.time - me.idle_time, 3)
                        for me in chip.mes],
            "queue": queue,
        })

    # -- timeseries integration ---------------------------------------------------

    def window_source(self):
        """A :meth:`TimeseriesCollector.add_source` callback emitting
        per-window occupancy deltas: ``occ.exec{me=i}``,
        ``occ.idle{me=i}``, ``occ.wait{cat=...,me=i}`` (cycles summed
        over the ME's threads; waits attributed to the window the block
        was *issued* in) and ``occ.mem_busy{channel=...}``."""
        prev: Dict[tuple, float] = {}

        def source(reg) -> None:
            chip = self.chip
            if chip is None:
                return
            for me in chip.mes:
                i = me.index
                exec_c = 0.0
                waits: Dict[str, float] = {}
                for th in me.threads:
                    ta = self.threads.get((i, th.index))
                    if ta is None:
                        continue
                    exec_c += ta.exec_cycles
                    for cat, v in ta.wait.items():
                        waits[cat] = waits.get(cat, 0.0) + v
                for name, cur in (("exec", exec_c), ("idle", me.idle_time)):
                    key = (name, i)
                    d = cur - prev.get(key, 0.0)
                    if d:
                        reg.counter("occ." + name, me=i).inc(round(d, 3))
                        prev[key] = cur
                for cat in sorted(waits):
                    key = (cat, i)
                    d = waits[cat] - prev.get(key, 0.0)
                    if d:
                        reg.counter("occ.wait", cat=cat, me=i).inc(
                            round(d, 3))
                        prev[key] = waits[cat]
            for ch in chip.memory.channels.values():
                key = ("busy", ch.name)
                d = ch.busy_time - prev.get(key, 0.0)
                if d:
                    reg.counter("occ.mem_busy", channel=ch.name).inc(
                        round(d, 3))
                    prev[key] = ch.busy_time
        return source

    # -- snapshot ----------------------------------------------------------------

    def thread_attribution(self, me) -> List[dict]:
        """Per-thread attribution records for one ME, rounded to 3
        decimals with ``idle`` as the compensating residual, so
        ``exec + waits + idle`` recovers ``total`` exactly after a
        3-decimal round (the sums-to-total invariant)."""
        horizon = me.time
        out = []
        for th in me.threads:
            ta = self.threads.get((me.index, th.index))
            rec = {"me": me.index, "thread": th.index,
                   "total": round(horizon, 3)}
            waits = dict(ta.wait) if ta is not None else {}
            if (ta is not None and ta.last_cat is not None
                    and ta.last_wake > horizon):
                # Only the final block can extend past the end of the
                # run; clamp the overshoot off its category.
                waits[ta.last_cat] -= ta.last_wake - horizon
            rec["exec"] = round(ta.exec_cycles if ta is not None else 0.0, 3)
            spent = rec["exec"]
            for cat in WAIT_CATEGORIES:
                v = round(waits.get(cat, 0.0), 3)
                rec[cat] = v
                spent += v
            rec["idle"] = round(rec["total"] - spent, 3)
            rec["blocks"] = dict(sorted(ta.blocks.items())) if ta else {}
            out.append(rec)
        return out

    def snapshot(self, chip=None) -> dict:
        """Deterministic plain-dict summary of the whole run: per-ME /
        per-thread attribution, per-channel queueing + utilization,
        per-ring occupancy, plus any time samples."""
        chip = chip if chip is not None else self.chip
        total_cycles = chip.now
        mes = []
        for me in chip.mes:
            mes.append({
                "me": me.index,
                "time": round(me.time, 3),
                "idle_time": round(me.idle_time, 3),
                "threads": self.thread_attribution(me),
            })
        channels = {}
        for key in sorted(chip.memory.channels):
            ch = chip.memory.channels[key]
            st = self.channel_stats.get(ch.name) or [0, 0.0, 0.0]
            requests = int(st[0])
            channels[ch.name] = {
                "requests": requests,
                "busy_cycles": round(ch.busy_time, 3),
                "utilization": round(ch.busy_time / total_cycles, 6)
                if total_cycles else 0.0,
                "queue_wait_cycles": round(st[1], 3),
                "mean_queue_wait": round(st[1] / requests, 3)
                if requests else 0.0,
                "max_queue_wait": round(st[2], 3),
            }
        rings = {}
        for name in sorted(chip.rings.rings):
            ring = chip.rings.rings[name]
            st = self.ring_stats.get(name) or [0, 0.0, 0.0]
            ops = int(st[0])
            rings[name] = {
                "puts": ring.puts,
                "gets": ring.gets,
                "drops": ring.drops,
                "empty_gets": ring.empty_gets,
                "max_depth": ring.max_depth,
                "mean_depth": round(st[1] / ops, 3) if ops else 0.0,
            }
        snap = {
            "total_cycles": round(total_cycles, 3),
            "mes": mes,
            "channels": channels,
            "rings": rings,
        }
        if self.samples:
            snap["samples"] = list(self.samples)
        return snap


# -- aggregation & verdicts ----------------------------------------------------


def aggregate_attribution(snapshot: dict) -> dict:
    """Sum the per-thread attribution over every thread of every ME.
    ``total`` is the matching sum of per-thread totals (thread-cycles,
    i.e. n_threads x ME cycles -- the denominator for shares)."""
    agg = {cat: 0.0 for cat in CATEGORIES}
    total = 0.0
    for me in snapshot["mes"]:
        for rec in me["threads"]:
            total += rec["total"]
            for cat in CATEGORIES:
                agg[cat] += rec[cat]
    out = {cat: round(agg[cat], 3) for cat in CATEGORIES}
    out["total"] = round(total, 3)
    return out


def attribution_shares(agg: dict) -> dict:
    """Fractions of total thread-cycles per category (0 when idle)."""
    total = agg.get("total") or 0.0
    if not total:
        return {cat: 0.0 for cat in CATEGORIES}
    return {cat: round(agg[cat] / total, 6) for cat in CATEGORIES}


def channel_utilization(snapshot: dict) -> dict:
    """Busy fraction per *logical* channel: scratch, sram (the busier of
    the two physical QDR channels -- one saturated channel is the
    bound), dram."""
    chans = snapshot.get("channels") or {}

    def util(name: str) -> float:
        return (chans.get(name) or {}).get("utilization", 0.0)

    return {
        "scratch": util("scratch"),
        "sram": round(max(util("sram0"), util("sram1")), 6),
        "dram": util("dram"),
    }


def bottleneck_verdict(snapshot: dict) -> dict:
    """One structured verdict for a run: what bounds this configuration.

    Decision order: a saturated memory channel wins (threads are
    plentiful, the channel is the serializing resource -- more MEs only
    deepen its queue); otherwise heavy empty-ring polling means the
    stage is starved of input; otherwise a mostly-executing engine is
    compute-bound; otherwise the engine is waiting on unsaturated
    memory latency, which more threads/MEs can hide."""
    agg = aggregate_attribution(snapshot)
    shares = attribution_shares(agg)
    util = channel_utilization(snapshot)
    binding = max(("scratch", "sram", "dram"), key=lambda c: util[c])
    dominant = max(WAIT_CATEGORIES, key=lambda c: shares[c])
    verdict = {
        "dominant_wait": dominant,
        "wait_share": shares[dominant],
        "channel": None,
        "channel_utilization": util[binding],
    }
    if util[binding] >= SATURATION_UTILIZATION:
        label = _CHANNEL_LABEL[binding]
        wait_share = shares[_CHANNEL_WAIT[binding]]
        verdict["kind"] = "memory-bound"
        verdict["channel"] = binding
        verdict["text"] = (
            "%d%% %s-wait — memory-bound on %s (%d%% channel occupancy); "
            "adding MEs won't help"
            % (round(wait_share * 100), label, label,
               round(util[binding] * 100)))
    elif shares["ring_empty"] >= STARVED_SHARE:
        verdict["kind"] = "input-starved"
        verdict["text"] = (
            "%d%% empty-ring polling — input-starved; offered load or the "
            "upstream stage is the limit"
            % round(shares["ring_empty"] * 100))
    elif shares["exec"] >= 0.5:
        verdict["kind"] = "compute-bound"
        verdict["text"] = (
            "%d%% executing — compute-bound; adding MEs should help"
            % round(shares["exec"] * 100))
    else:
        verdict["kind"] = "latency-bound"
        verdict["text"] = (
            "%d%% %s-wait with no saturated channel — latency-bound; "
            "more threads/MEs can hide it"
            % (round(shares[dominant] * 100), dominant))
    return verdict


def occupancy_cell(app: str, level: str, n_mes: int, rate_gbps: float,
                   snapshot: dict) -> dict:
    """One BENCH_occupancy.json cell: attribution + channels + verdict
    for a single (app, level, MEs) run. Deterministic and JSON-plain."""
    verdict = bottleneck_verdict(snapshot)
    agg = aggregate_attribution(snapshot)
    cell = {
        "app": app,
        "level": level,
        "n_mes": n_mes,
        "rate_gbps": round(rate_gbps, 3),
        "total_cycles": snapshot["total_cycles"],
        "attribution": agg,
        "shares": attribution_shares(agg),
        "channels": snapshot["channels"],
        "rings": snapshot["rings"],
        "threads": [rec for me in snapshot["mes"] for rec in me["threads"]],
        "verdict": verdict,
    }
    cell["verdict"]["text"] = "%s @%dME: %s" % (app, n_mes, verdict["text"])
    return cell
