"""Lightweight metrics registry: counters, gauges, timers, histograms
and time series, with JSONL export.

Design goals (see DESIGN.md section 7):

* **Near-zero overhead when disabled.** A disabled registry hands out a
  shared :data:`NULL` metric whose methods are no-ops, so instrumented
  code pays one dict-free call per metric fetch and nothing per update.
  The global registry is disabled by default; benchmarks and tools
  enable it explicitly (or via ``REPRO_OBS=1``).
* **Deterministic.** Recording never perturbs compiler output or
  simulated time; the simulator sampler piggybacks on the existing
  event loop instead of scheduling events of its own, so enabled and
  disabled runs produce bit-identical :class:`~repro.rts.system.RunResult`
  numbers.
* **Labels.** Metrics carry a flat ``labels`` dict. A registry keeps a
  stack of default labels (:meth:`MetricsRegistry.labels`) so a
  benchmark can scope everything recorded during one compile+run under
  ``{app=..., level=...}`` without threading context everywhere.

Export is one JSON object per line (``dump_jsonl``); the companion
renderer is :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple


class _NullMetric:
    """Shared sink for every metric type when the registry is disabled.

    Doubles as a no-op context manager so ``timer(...).time()`` works
    unchanged in instrumented code.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def sample(self, t, value) -> None:
        pass

    def record(self, seconds: float) -> None:
        pass

    def time(self) -> "_NullMetric":
        return self

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The shared disabled-metric singleton.
NULL = _NullMetric()


class Metric:
    kind = "metric"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Dict[str, object]):
        self.name = name
        self.labels = labels

    def _payload(self) -> Dict[str, object]:  # pragma: no cover - abstract
        return {}

    def to_record(self) -> Dict[str, object]:
        rec: Dict[str, object] = {"type": self.kind, "name": self.name}
        if self.labels:
            rec["labels"] = dict(self.labels)
        rec.update(self._payload())
        return rec


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _payload(self):
        return {"value": self.value}


class Gauge(Metric):
    """Last-write-wins scalar."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def _payload(self):
        return {"value": self.value}


class _TimerContext:
    __slots__ = ("timer", "t0")

    def __init__(self, timer: "Timer"):
        self.timer = timer
        self.t0 = 0.0

    def __enter__(self):
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.timer.record(time.perf_counter() - self.t0)
        return False


class Timer(Metric):
    """Accumulated wall time over ``count`` timed sections."""

    kind = "timer"
    __slots__ = ("count", "total_s")

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.count = 0
        self.total_s = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds

    def time(self) -> _TimerContext:
        return _TimerContext(self)

    def _payload(self):
        return {"count": self.count, "total_s": self.total_s}


class Histogram(Metric):
    """Summary statistics (count / sum / min / max / mean) of observed
    values. Bucket-free on purpose: the report only needs summaries."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _payload(self):
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class Series(Metric):
    """(t, value) samples over simulated time, with bounded memory: when
    the buffer fills, every other retained sample is dropped and the
    acceptance stride doubles, so long runs keep an evenly thinned
    history instead of growing without bound."""

    kind = "series"
    __slots__ = ("samples", "max_samples", "_stride", "_seen")

    def __init__(self, name, labels, max_samples: int = 4096):
        super().__init__(name, labels)
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = max_samples
        self._stride = 1
        self._seen = 0

    def sample(self, t, value) -> None:
        self._seen += 1
        if self._seen % self._stride:
            return
        self.samples.append((t, value))
        if len(self.samples) >= self.max_samples:
            del self.samples[::2]
            self._stride *= 2

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0}
        vals = [v for _, v in self.samples]
        return {"n": len(vals), "min": min(vals), "max": max(vals),
                "mean": sum(vals) / len(vals), "last": vals[-1]}

    def _payload(self):
        return {"summary": self.summary(),
                "samples": [[t, v] for t, v in self.samples]}


class _LabelScope:
    __slots__ = ("registry", "merged")

    def __init__(self, registry: "MetricsRegistry", merged: Dict[str, object]):
        self.registry = registry
        self.merged = merged

    def __enter__(self):
        self.registry._label_stack.append(self.merged)
        return self.registry

    def __exit__(self, *exc) -> bool:
        self.registry._label_stack.pop()
        return False


class MetricsRegistry:
    """Get-or-create store of metrics keyed by (kind, name, labels)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple, Metric] = {}
        self._label_stack: List[Dict[str, object]] = [{}]

    # -- metric accessors --------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object]):
        if not self.enabled:
            return NULL
        merged = self._label_stack[-1]
        if labels:
            merged = dict(merged)
            merged.update(labels)
        key = (cls.kind, name, tuple(sorted(merged.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, merged)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def timer(self, name: str, **labels) -> Timer:
        return self._get(Timer, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def series(self, name: str, **labels) -> Series:
        return self._get(Series, name, labels)

    # -- label scoping -----------------------------------------------------------

    def labels(self, **labels) -> _LabelScope:
        """Context manager: apply default labels to metrics created (or
        fetched) inside the ``with`` block."""
        merged = dict(self._label_stack[-1])
        merged.update(labels)
        return _LabelScope(self, merged)

    # -- export ------------------------------------------------------------------

    def metrics(self) -> Iterable[Metric]:
        return self._metrics.values()

    def records(self) -> List[Dict[str, object]]:
        recs = [m.to_record() for m in self._metrics.values()]
        recs.sort(key=lambda r: (r["type"], r["name"],
                                 sorted((r.get("labels") or {}).items())))
        return recs

    def dump_jsonl(self, path: str, append: bool = False,
                   header: Optional[Dict[str, object]] = None) -> str:
        """Write the registry's records as JSONL.

        ``append=True`` adds this dump to an existing file instead of
        clobbering it (two runs in one session must not silently erase
        each other); ``header`` is written first as a ``run_header``
        record so :mod:`repro.obs.report` can split a multi-run file
        back into per-run scopes.
        """
        d = os.path.dirname(os.path.abspath(path))
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "a" if append else "w") as fh:
            if header is not None:
                rec = {"type": "run_header"}
                rec.update(header)
                fh.write(json.dumps(rec) + "\n")
            for rec in self.records():
                fh.write(json.dumps(rec) + "\n")
        return path

    def snapshot_and_reset(self) -> List[Dict[str, object]]:
        """Counter records accrued since the last call, then zero them.

        The window boundary of :class:`repro.obs.timeseries
        .TimeseriesCollector`: counters drain into the closing window's
        record and restart for the next one. Only counters reset --
        gauges are last-write-wins state, timers/histograms/series keep
        accumulating -- and zero-valued counters are skipped so window
        records stay sparse. Records come back in the same deterministic
        order as :meth:`records`.
        """
        out: List[Dict[str, object]] = []
        for metric in self._metrics.values():
            if metric.kind == "counter" and metric.value:
                out.append(metric.to_record())
                metric.value = 0
        out.sort(key=lambda r: (r["type"], r["name"],
                                sorted((r.get("labels") or {}).items())))
        return out

    # -- cross-registry merge ----------------------------------------------------

    def merge_records(self, records: Iterable[Dict[str, object]],
                      **extra_labels) -> None:
        """Fold JSON-ready records (another registry's :meth:`records`,
        possibly shipped across a process boundary) into this registry.

        Counters and timers accumulate, histograms combine their
        summaries, series append their samples, gauges take the merged
        value (last write wins) -- the same outcome as if the metrics
        had been recorded here directly. ``extra_labels`` tag every
        merged record (the sweep orchestrator labels each worker's
        records with its job key so merged scopes stay disjoint).
        """
        if not self.enabled:
            return
        for rec in records:
            rtype = rec.get("type")
            labels = dict(rec.get("labels") or {})
            if extra_labels:
                labels.update(extra_labels)
            with self.labels(**labels):
                if rtype == "counter":
                    self.counter(rec["name"]).inc(rec.get("value", 0))
                elif rtype == "gauge":
                    self.gauge(rec["name"]).set(rec.get("value", 0.0))
                elif rtype == "timer":
                    t = self.timer(rec["name"])
                    t.count += rec.get("count", 0)
                    t.total_s += rec.get("total_s", 0.0)
                elif rtype == "histogram":
                    h = self.histogram(rec["name"])
                    h.count += rec.get("count", 0)
                    h.total += rec.get("total", 0.0)
                    for bound, pick in (("min", min), ("max", max)):
                        v = rec.get(bound)
                        if v is not None:
                            cur = getattr(h, bound)
                            setattr(h, bound,
                                    v if cur is None else pick(cur, v))
                elif rtype == "series":
                    s = self.series(rec["name"])
                    for t_v in rec.get("samples") or []:
                        s.samples.append((t_v[0], t_v[1]))
                # Unknown types (e.g. run_header) are skipped: a merge
                # must accept whole JSONL files.

    def clear(self) -> None:
        self._metrics.clear()
        self._label_stack = [{}]


# -- process-global registry ----------------------------------------------------

_GLOBAL = MetricsRegistry(enabled=bool(os.environ.get("REPRO_OBS")))


def get_registry() -> MetricsRegistry:
    return _GLOBAL


def enable() -> MetricsRegistry:
    _GLOBAL.enabled = True
    return _GLOBAL


def disable() -> MetricsRegistry:
    _GLOBAL.enabled = False
    return _GLOBAL


def is_enabled() -> bool:
    return _GLOBAL.enabled


@contextmanager
def scoped_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` as the process-global registry.

    Every instrumentation site in the compiler and simulator fetches
    the global registry at call time, so swapping it for the duration
    of one job gives that job a private, mergeable metric set without
    threading a registry argument through every layer. The sweep
    orchestrator runs each (app, level, n_mes) job inside one of these
    so a job's records can be shipped to the parent and merged
    deterministically -- and so an in-process (``--jobs 1``) run leaves
    the session's accumulated metrics untouched, exactly like a worker
    process would.
    """
    global _GLOBAL
    prev = _GLOBAL
    _GLOBAL = registry
    try:
        yield registry
    finally:
        _GLOBAL = prev
