"""Per-packet lifecycle tracing for the simulated IXP2400.

A :class:`PacketTracer` follows every packet *handle* (the SRAM metadata
address) through its full lifecycle:

    Rx arrival -> free-list allocation -> ring enqueue / dequeue
    (queue-wait) -> per-ME dispatch -> PPF execution -> CC transfer ->
    Tx (or drop, with cause)

Each step is a timestamped raw event in **simulated ME cycles**. The
tracer is pure observation: it is attached as ``chip.tracer`` and every
instrumentation site in the simulator guards with ``if tracer is not
None``, so a run with tracing off executes the exact same code paths as
before the tracer existed, and a run with tracing *on* only appends to
Python-side lists -- simulated state, event order and every measured
number stay bit-identical (tested in ``tests/test_trace.py``).

Raw events can be dumped as JSONL (:meth:`PacketTracer.dump_events_jsonl`)
and converted to Chrome trace-event JSON for Perfetto / chrome://tracing
by :mod:`repro.obs.export`, either programmatically or via::

    python -m repro.obs.trace export <events.jsonl> [-o out.trace.json]

Compile-pipeline stages can be recorded onto the same trace file:
:func:`capture_compile_spans` arms a process-global span list that
:func:`compile_stage` (used by ``repro.compiler``) appends to, and
:func:`drain_compile_spans` hands the accumulated spans to the exporter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import Counter, deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Ring-name prefix of the buffer/metadata free lists.
FREE_PREFIX = "ring.__"


class TraceEvent:
    """One raw lifecycle event. ``t`` is simulated ME cycles; ``pkt`` is
    the per-lifetime packet id (None for events before allocation, e.g.
    an Rx drop with no free handle)."""

    __slots__ = ("kind", "t", "pkt", "data")

    def __init__(self, kind: str, t: float, pkt: Optional[int],
                 data: Optional[Dict[str, object]] = None):
        self.kind = kind
        self.t = t
        self.pkt = pkt
        self.data = data

    def to_dict(self) -> Dict[str, object]:
        rec: Dict[str, object] = {"kind": self.kind, "t": self.t}
        if self.pkt is not None:
            rec["pkt"] = self.pkt
        if self.data:
            rec.update(self.data)
        return rec


class PacketTracer:
    """Records packet lifecycle events; attach as ``chip.tracer``.

    Handles are recycled by the free lists, so each *allocation* of a
    handle gets a fresh monotonically increasing packet id; ``active``
    maps the handle to the id of its current lifetime. ``max_packets``
    bounds memory: once that many lifecycles have begun, new packets go
    untraced (counted in ``truncated``) while already-traced packets
    still complete, keeping every recorded begin/end pair balanced.

    ``streaming=True`` reshapes the tracer for unbounded runs
    (``repro.serve``): ``events`` and ``latencies`` become bounded rings
    (oldest entries evicted, counted in ``events_truncated`` /
    ``latencies_truncated``), latency percentiles come from an O(1)
    :class:`~repro.obs.timeseries.QuantileSketch` instead of the full
    list, completed packets are pruned from ``born`` (so the
    ``max_packets`` guard bounds packets *in flight*, not the whole
    run), and each forwarded latency is also pushed to ``latency_sink``
    (the timeseries collector's per-window feed) when one is set.
    """

    def __init__(self, max_packets: int = 100_000, streaming: bool = False,
                 max_latencies: int = 4096, max_events: int = 16_384):
        self.max_packets = max_packets
        self.streaming = streaming
        self.active: Dict[int, int] = {}       # handle -> packet id
        self.born: Dict[int, float] = {}       # packet id -> first-seen cycles
        self.born_total = 0                    # lifecycles begun, ever
        self.drops: Counter = Counter()        # cause -> count
        self.next_id = 1
        self.truncated = 0
        self.events_truncated = 0
        self.latencies_truncated = 0
        self.latency_sink: Optional[Callable[[float], None]] = None
        self.lat_sketch = None
        if streaming:
            from repro.obs.timeseries import QuantileSketch

            self.events = deque(maxlen=max_events)
            self.latencies = deque(maxlen=max_latencies)
            self.lat_sketch = QuantileSketch()
        else:
            self.events: List[TraceEvent] = []
            self.latencies: List[float] = []   # Rx->Tx cycles, forwarded only
        self.finished_at: Optional[float] = None
        # (me, thread) -> (handle, pkt id, start cycles): the packet the
        # thread is currently processing (PPF execution span).
        self._me_cur: Dict[Tuple[int, int], Tuple[int, int, float]] = {}

    # -- low-level ---------------------------------------------------------------

    def _emit(self, kind: str, t: float, pkt: Optional[int],
              **data: object) -> None:
        events = self.events
        if self.streaming and len(events) == events.maxlen:
            self.events_truncated += 1
        events.append(TraceEvent(kind, t, pkt, data or None))

    def _begin(self, handle: int, t: float, origin: str) -> Optional[int]:
        old = self.active.get(handle)
        if old is not None:
            # A handle re-allocated without a visible end: close the
            # stale lifetime so pairs stay balanced.
            self._end_handle(handle, t, "lost", None)
        if len(self.born) >= self.max_packets:
            self.truncated += 1
            return None
        pkt = self.next_id
        self.next_id += 1
        self.active[handle] = pkt
        self.born[pkt] = t
        self.born_total += 1
        self._emit("pkt_begin", t, pkt, origin=origin, handle=handle)
        return pkt

    def _end_handle(self, handle: int, t: float, outcome: str,
                    cause: Optional[str]) -> None:
        pkt = self.active.pop(handle, None)
        if pkt is None:
            return
        data: Dict[str, object] = {"outcome": outcome}
        if cause:
            data["cause"] = cause
        if outcome == "tx":
            lat = t - self.born[pkt]
            if self.streaming:
                if len(self.latencies) == self.latencies.maxlen:
                    self.latencies_truncated += 1
                self.lat_sketch.add(lat)
                if self.latency_sink is not None:
                    self.latency_sink(lat)
            self.latencies.append(lat)
            data["latency_cycles"] = lat
        elif outcome == "drop":
            self.drops[cause or "unknown"] += 1
        if self.streaming:
            # Completed lifecycle: prune so born tracks packets in
            # flight and long runs stay bounded.
            self.born.pop(pkt, None)
        self._emit("pkt_end", t, pkt, **data)

    def _close_span(self, me: int, thread: int, t: float,
                    disposition: str) -> None:
        cur = self._me_cur.pop((me, thread), None)
        if cur is None:
            return
        _, pkt, _ = cur
        self._emit("span_end", t, pkt, me=me, thread=thread,
                   disposition=disposition)

    # -- Rx engine ---------------------------------------------------------------

    def rx_packet(self, handle: int, t: float, port: int,
                  length: int) -> None:
        """Rx allocated a buffer+metadata pair and enqueued the handle
        on the rx ring."""
        pkt = self._begin(handle, t, "rx")
        if pkt is not None:
            self._emit("ring_enq", t, pkt, ring="ring.rx", port=port,
                       length=length)

    def rx_drop(self, t: float, cause: str) -> None:
        """Rx dropped an offered packet before allocation completed."""
        self.drops[cause] += 1
        self._emit("rx_drop", t, None, cause=cause)

    # -- microengines ------------------------------------------------------------

    def me_ring_get(self, me: int, thread: int, ring: str, handle: int,
                    t: float) -> None:
        if handle == 0:
            return  # empty poll
        if ring == "ring.__meta_free":
            # Application-side allocation (packet_create / packet copy).
            self._begin(handle, t, "me_alloc")
            return
        if ring.startswith(FREE_PREFIX):
            return  # buffer free list: not a packet identity
        pkt = self.active.get(handle)
        if self._me_cur.get((me, thread)) is not None:
            # Threads process one packet at a time; a new dispatch
            # before the previous hand-off means we missed the close.
            self._close_span(me, thread, t, "preempted")
        if pkt is None:
            return  # untraced (over max_packets) or pre-attach packet
        self._emit("ring_deq", t, pkt, ring=ring)
        self._emit("span_begin", t, pkt, me=me, thread=thread, ring=ring)
        self._me_cur[(me, thread)] = (handle, pkt, t)

    def me_ring_put(self, me: int, thread: int, ring: str, value: int,
                    t: float, ok: bool = True) -> None:
        cur = self._me_cur.get((me, thread))
        if ring == "ring.__buf_free":
            return  # buffer recycle: tracked via the metadata handle
        if ring == "ring.__meta_free":
            if value in self.active:
                if cur is not None and cur[0] == value:
                    self._close_span(me, thread, t, "drop")
                self._end_handle(value, t, "drop", "app_drop")
            return
        if ring.startswith(FREE_PREFIX):
            return
        pkt = self.active.get(value)
        if pkt is None:
            return
        if cur is not None and cur[0] == value:
            self._close_span(me, thread, t, "forward")
        if ok:
            self._emit("ring_enq", t, pkt, ring=ring)
        else:
            # The hardware ring rejected the put: the handle is gone.
            self._end_handle(value, t, "drop", "cc_ring_full")

    # -- Tx engine ---------------------------------------------------------------

    def tx_packet(self, handle: int, t: float, port: int,
                  length: int) -> None:
        pkt = self.active.get(handle)
        if pkt is None:
            return
        self._emit("ring_deq", t, pkt, ring="ring.tx")
        self._end_handle(handle, t, "tx", None)

    # -- XScale core -------------------------------------------------------------

    def xscale_get(self, ring: str, handle: int, t: float) -> None:
        pkt = self.active.get(handle)
        if pkt is None:
            return
        self._emit("ring_deq", t, pkt, ring=ring)
        self._emit("xscale", t, pkt, ring=ring)

    def xscale_put(self, ring: str, handle: int, t: float,
                   ok: bool = True) -> None:
        pkt = self.active.get(handle)
        if pkt is None:
            return
        if ok:
            self._emit("ring_enq", t, pkt, ring=ring)
        else:
            self._end_handle(handle, t, "drop", "cc_ring_full")

    def alloc(self, handle: int, t: float, origin: str) -> None:
        """XScale-side allocation (packet_create / packet copy)."""
        self._begin(handle, t, origin)

    def drop(self, handle: int, t: float, cause: str) -> None:
        self._end_handle(handle, t, "drop", cause)

    # -- run end -----------------------------------------------------------------

    def finish(self, t: float) -> None:
        """Close every open span/lifecycle at the final simulated time
        so exported begin/end pairs are balanced even for packets still
        in flight when the run stopped."""
        for (me, thread) in sorted(self._me_cur):
            self._close_span(me, thread, t, "unfinished")
        for handle in sorted(self.active):
            self._end_handle(handle, t, "inflight", None)
        self.finished_at = t

    # -- summaries ---------------------------------------------------------------

    def latency_summary(self) -> Dict[str, float]:
        """Rx->Tx latency percentiles over forwarded packets, cycles.

        Exact (nearest-rank over the full list) in the default mode; in
        streaming mode the percentiles come from the O(1) sketch over
        *every* forwarded packet. ``truncated`` counts latency samples
        evicted from the bounded ring (always 0 when not streaming), so
        reports can show when the raw list is incomplete.
        """
        if self.streaming:
            summ = self.lat_sketch.summary()
            summ["truncated"] = self.latencies_truncated
            return summ
        lats = sorted(self.latencies)
        n = len(lats)
        if n == 0:
            return {"count": 0, "min": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "mean": 0.0, "max": 0.0, "truncated": 0}
        return {
            "count": n,
            "min": lats[0],
            "p50": _percentile(lats, 0.50),
            "p95": _percentile(lats, 0.95),
            "p99": _percentile(lats, 0.99),
            "mean": sum(lats) / n,
            "max": lats[-1],
            "truncated": 0,
        }

    # -- export ------------------------------------------------------------------

    def event_dicts(self) -> Iterator[Dict[str, object]]:
        for ev in self.events:
            yield ev.to_dict()

    def dump_events_jsonl(self, path: str) -> str:
        """Write raw events, one JSON object per line (convert with
        ``python -m repro.obs.trace export <path>``)."""
        d = os.path.dirname(os.path.abspath(path))
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as fh:
            meta = {"kind": "trace_meta", "t": 0.0,
                    "packets": self.born_total,
                    "truncated": self.truncated,
                    "finished_at": self.finished_at}
            if self.streaming:
                meta["streaming"] = True
                meta["events_truncated"] = self.events_truncated
            fh.write(json.dumps(meta) + "\n")
            for rec in self.event_dicts():
                fh.write(json.dumps(rec) + "\n")
        return path


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    n = len(sorted_vals)
    rank = max(1, min(n, int(-(-q * n // 1))))  # ceil(q*n), clamped
    return sorted_vals[rank - 1]


def record_trace_summary(reg, tracer: PacketTracer) -> None:
    """Record per-packet latency percentiles + drop causes into a
    metrics registry (rendered by ``repro.obs.report``)."""
    summ = tracer.latency_summary()
    for stat in ("count", "min", "p50", "p95", "p99", "mean", "max"):
        reg.gauge("sim.pkt.latency_cycles", stat=stat).set(
            round(summ[stat], 3))
    if summ.get("truncated"):
        reg.gauge("sim.pkt.latency_cycles", stat="truncated").set(
            summ["truncated"])
    reg.gauge("sim.pkt.traced").set(tracer.born_total)
    reg.gauge("sim.pkt.untraced").set(tracer.truncated)
    for cause, n in sorted(tracer.drops.items()):
        reg.gauge("sim.pkt.drops", cause=cause).set(n)


# -- compile-stage spans ---------------------------------------------------------

#: When armed (a list), ``compile_stage`` appends (stage, labels, t0_s,
#: t1_s) wall-clock spans here for the exporter's compiler track.
_COMPILE_SPANS: Optional[List[Tuple[str, Dict[str, object], float, float]]] = None


def capture_compile_spans(on: bool = True) -> None:
    """Arm (or disarm) process-global capture of compile-stage spans."""
    global _COMPILE_SPANS
    _COMPILE_SPANS = [] if on else None


def spans_armed() -> bool:
    """Whether compile-stage span capture is currently armed."""
    return _COMPILE_SPANS is not None


def drain_compile_spans() -> List[Tuple[str, Dict[str, object], float, float]]:
    """Return and clear the captured spans ([] when capture is off)."""
    global _COMPILE_SPANS
    if not _COMPILE_SPANS:
        return []
    spans, _COMPILE_SPANS = _COMPILE_SPANS, []
    return spans


def inject_compile_spans(
        spans: List[Tuple[str, Dict[str, object], float, float]]) -> None:
    """Append spans captured elsewhere (typically drained in a sweep
    worker process and shipped back) into this process's armed span
    list, arming it if needed, so one exported timeline can carry every
    worker's compile stages."""
    global _COMPILE_SPANS
    if not spans:
        return
    if _COMPILE_SPANS is None:
        _COMPILE_SPANS = []
    _COMPILE_SPANS.extend((s[0], dict(s[1]), s[2], s[3]) for s in spans)


@contextmanager
def compile_stage(reg, stage: str):
    """Time one compiler pipeline stage: always feeds the
    ``compile.stage`` timer; additionally records a wall-clock span for
    the trace exporter when :func:`capture_compile_spans` is armed."""
    spans = _COMPILE_SPANS
    t0 = time.perf_counter() if spans is not None else 0.0
    with reg.timer("compile.stage", stage=stage).time():
        yield
    if spans is not None:
        labels = dict(getattr(reg, "_label_stack", [{}])[-1])
        spans.append((stage, labels, t0, time.perf_counter()))


# -- CLI -------------------------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Convert raw packet-trace events to Chrome "
                    "trace-event JSON (Perfetto / chrome://tracing).")
    sub = ap.add_subparsers(dest="cmd", required=True)
    exp = sub.add_parser("export", help="convert an events JSONL dump")
    exp.add_argument("events", help="raw events JSONL written by "
                                    "PacketTracer.dump_events_jsonl")
    exp.add_argument("-o", "--out", default=None,
                     help="output path (default: <events>.trace.json)")
    args = ap.parse_args(argv)

    from repro.obs.export import write_chrome_trace

    if not os.path.exists(args.events):
        print("no events file at %s" % args.events, file=sys.stderr)
        return 1
    events = []
    with open(args.events) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    if not events:
        print("events file %s is empty" % args.events, file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        base = args.events
        for suffix in (".events.jsonl", ".jsonl"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        out = base + ".trace.json"
    write_chrome_trace(out, events)
    print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
