"""Compare two compile reports or two benchmark runs; gate regressions.

Usage::

    python -m repro.obs.diff old_compile_report.json new_compile_report.json
    python -m repro.obs.diff old_BENCH_fig13.json new_BENCH_fig13.json \
        [--tolerance 0.05]

The file kind is auto-detected from the ``kind`` field written by
:mod:`repro.obs.ledger` (``compile_report``),
``benchmarks/figures_common.py`` (``bench``), the serve harness
(``bench_churn``), and the sweep's stall-attribution profiler
(``bench_occupancy``). A file whose ``kind`` is none of those is an
error (exit :data:`EXIT_REGRESSION`), never silently treated as an
empty diff -- a typo'd or future-format file must fail CI loudly.

* **compile report vs compile report** -- prints decision-count deltas
  per pass/verdict plus summary deltas (IR size, image code size,
  estimated throughput, per-pass optimization wins). Exits 0 unless
  ``--gate`` is given, in which case it exits 2 when the new report
  *regresses*: an image's code size grows beyond ``--tolerance``, SOAR's
  resolution rate drops, or a previously nonzero optimization win
  (PAC combines, SWC acceptances, PHR elisions) falls to zero.
* **bench vs bench** -- compares forwarding rates level by level and ME
  count by ME count; exits 2 when any new rate drops more than
  ``--tolerance`` (fractional) below the old rate. This is the CI
  perf-regression gate.
* **churn bench vs churn bench** (``python -m repro.serve`` output) --
  gates the serve harness: mean forwarding rate must not drop and
  overall p99 latency must not grow beyond ``--tolerance``, and the
  number of applied control-plane updates must not change.
* **occupancy bench vs occupancy bench** (``python -m repro.sweep
  --profile`` output) -- gates the stall-cycle attribution: a cell's
  bottleneck verdict (kind or saturated channel) must not change, no
  cell may vanish, rates must not drop beyond ``--tolerance``
  (fractional), and no attribution share may shift beyond
  ``--tolerance`` (absolute).
* **ffspeed bench vs ffspeed bench** (``python -m repro.sweep
  --engine fastforward`` output) -- gates the two-speed engine's
  calibration: no app/level/cell may vanish, no cell's modelled rate
  may drop beyond ``--tolerance`` (fractional), and any recorded
  accuracy figure (``err_pct`` vs the converged cycle-accurate
  reference) must stay within the file's own ``error_bound_pct``.
* **tune bench vs tune bench** (``python -m repro.tune`` output) --
  gates the autotuner: no app may vanish, the best confirmed rate must
  not drop beyond ``--tolerance`` (fractional), and the evidence
  pruning must not disappear entirely (regions pruned before, none
  now).

Two identical files always diff clean and exit 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Exit code for a gated regression (1 is reserved for usage/IO errors).
EXIT_REGRESSION = 2

#: Every file format this tool knows how to diff.
KNOWN_KINDS = ("compile_report", "bench", "bench_churn", "bench_occupancy",
               "bench_ffspeed", "bench_tune")


class SystemExit2(Exception):
    """IO/usage error carrying a message (exit code 1)."""


class UnknownKindError(SystemExit2):
    """A file whose ``kind`` this tool does not understand. Fatal at
    :data:`EXIT_REGRESSION` (not 1): CI pipelines feed this tool files
    they *believe* are gateable, so a format mismatch must read as a
    failed gate, never as a clean empty diff."""


def _load(path: str) -> dict:
    if not os.path.exists(path):
        raise SystemExit2("no such file: %s" % path)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit2("cannot read %s: %s" % (path, exc))
    if not isinstance(data, dict) or "kind" not in data:
        raise SystemExit2(
            "%s has no 'kind' field -- not a compile report or bench file"
            % path)
    if data["kind"] not in KNOWN_KINDS:
        raise UnknownKindError(
            "%s has unknown kind %r (known: %s)"
            % (path, data["kind"], ", ".join(KNOWN_KINDS)))
    return data


# -- compile report vs compile report -------------------------------------------------


def _count_table(report: dict) -> Dict[Tuple[str, str], int]:
    out: Dict[Tuple[str, str], int] = {}
    for pass_name, verdicts in (report.get("decision_counts") or {}).items():
        for verdict, n in verdicts.items():
            out[(pass_name, verdict)] = n
    return out


def _opt_wins(report: dict) -> Dict[str, float]:
    """The per-pass 'how much did it optimize' scalars used for gating."""
    opt = report.get("opt") or {}
    wins: Dict[str, float] = {}
    pac = opt.get("pac")
    if pac:
        wins["pac.combined_loads"] = pac.get("combined_loads", 0)
        wins["pac.combined_stores"] = pac.get("combined_stores", 0)
    soar = opt.get("soar")
    if soar:
        wins["soar.resolution_rate"] = soar.get("resolution_rate", 0.0)
    phr = opt.get("phr")
    if phr:
        wins["phr.elided_encaps"] = phr.get("elided_encaps", 0)
        wins["phr.localized_meta_fields"] = len(
            phr.get("localized_meta_fields", []))
    swc = opt.get("swc")
    if swc:
        wins["swc.cached"] = len(swc.get("cached", []))
        wins["swc.rewritten_loads"] = swc.get("rewritten_loads", 0)
    return wins


def diff_compile(old: dict, new: dict, tolerance: float,
                 gate: bool) -> Tuple[List[str], List[str]]:
    """(report_lines, regression_lines). Regressions are only *fatal*
    when gating, but they are always listed."""
    lines: List[str] = []
    regressions: List[str] = []

    lines.append("compile report diff: %s -> %s" % (
        old.get("level"), new.get("level")))

    # Decision-count deltas.
    oc, nc = _count_table(old), _count_table(new)
    keys = sorted(set(oc) | set(nc))
    changed = [(k, oc.get(k, 0), nc.get(k, 0)) for k in keys
               if oc.get(k, 0) != nc.get(k, 0)]
    if changed:
        lines.append("decision deltas:")
        for (pass_name, verdict), a, b in changed:
            lines.append("  %-14s %-18s %4d -> %-4d (%+d)" % (
                pass_name, verdict, a, b, b - a))
    else:
        lines.append("decision counts: identical "
                     "(%d decisions)" % len(new.get("decisions") or []))

    # Summary deltas.
    o_ir, n_ir = old.get("ir") or {}, new.get("ir") or {}
    if o_ir.get("instrs") != n_ir.get("instrs"):
        lines.append("ir instrs: %s -> %s" % (o_ir.get("instrs"),
                                              n_ir.get("instrs")))
    o_plan, n_plan = old.get("plan") or {}, new.get("plan") or {}
    o_tp = o_plan.get("throughput_pps", 0.0)
    n_tp = n_plan.get("throughput_pps", 0.0)
    if o_tp != n_tp:
        lines.append("estimated throughput: %.0f -> %.0f pps (%+.1f%%)" % (
            o_tp, n_tp, 100 * (n_tp - o_tp) / o_tp if o_tp else 0.0))

    o_imgs, n_imgs = old.get("images") or {}, new.get("images") or {}
    for name in sorted(set(o_imgs) | set(n_imgs)):
        a = (o_imgs.get(name) or {}).get("code_size")
        b = (n_imgs.get(name) or {}).get("code_size")
        if a is None and b is None:
            continue
        if a != b:
            lines.append("image %s code size: %s -> %s words" % (name, a, b))
        # Every edge of the lattice is gated: an image that appears,
        # vanishes, or grows from a zero/absent baseline is a layout
        # change CI must see, not a hole in the tolerance check.
        if a is None:
            regressions.append(
                "image %s newly appears (%s words)" % (name, b))
        elif b is None:
            regressions.append(
                "image %s vanished (was %s words)" % (name, a))
        elif not a and b:
            regressions.append(
                "image %s code size grew from zero baseline "
                "(0 -> %d words)" % (name, b))
        elif a and not b:
            regressions.append(
                "image %s code size fell to zero (was %d words)" % (name, a))
        elif b > a * (1 + tolerance):
            regressions.append(
                "image %s code size grew %.1f%% (%d -> %d words, "
                "tolerance %.0f%%)" % (name, 100 * (b - a) / a, a, b,
                                       100 * tolerance))

    ow, nw = _opt_wins(old), _opt_wins(new)
    for key in sorted(set(ow) | set(nw)):
        a, b = ow.get(key), nw.get(key)
        if a != b:
            lines.append("%s: %s -> %s" % (key, a, b))
        if a is None or b is None:
            # A pass ran in only one of the two compiles (different
            # levels): a delta, not a regression.
            continue
        if key == "soar.resolution_rate":
            if b < a - 1e-9:
                regressions.append(
                    "SOAR resolution rate dropped %.3f -> %.3f" % (a, b))
        elif a > 0 and b == 0:
            regressions.append("%s fell to zero (was %g)" % (key, a))

    return lines, regressions


# -- bench vs bench -------------------------------------------------------------------


def diff_bench(old: dict, new: dict,
               tolerance: float) -> Tuple[List[str], List[str]]:
    lines: List[str] = []
    regressions: List[str] = []
    lines.append("bench diff: %s (%s)" % (new.get("figure", "?"),
                                          new.get("app", "?")))
    me_counts = new.get("me_counts") or old.get("me_counts") or []
    o_rates = old.get("rates") or {}
    n_rates = new.get("rates") or {}
    for level in sorted(set(o_rates) | set(n_rates)):
        a_row = o_rates.get(level)
        b_row = n_rates.get(level)
        if a_row is None or b_row is None:
            lines.append("  %s: only in %s file" % (
                level, "new" if a_row is None else "old"))
            continue
        if a_row == b_row:
            continue
        lines.append("  %s: %s -> %s" % (level, a_row, b_row))
        for i, (a, b) in enumerate(zip(a_row, b_row)):
            if a > 0 and b < a * (1 - tolerance):
                mes = me_counts[i] if i < len(me_counts) else i + 1
                regressions.append(
                    "%s at %s MEs: rate dropped %.3f -> %.3f "
                    "(-%.1f%%, tolerance %.0f%%)"
                    % (level, mes, a, b, 100 * (a - b) / a,
                       100 * tolerance))
    if len(lines) == 1:
        lines.append("  rates identical")

    o_mem = old.get("mem_accesses") or {}
    n_mem = new.get("mem_accesses") or {}
    for level in sorted(set(o_mem) | set(n_mem)):
        if o_mem.get(level) != n_mem.get(level):
            lines.append("  mem_accesses[%s]: %s -> %s" % (
                level, o_mem.get(level), n_mem.get(level)))
    return lines, regressions


# -- churn bench vs churn bench -------------------------------------------------------


def diff_churn(old: dict, new: dict,
               tolerance: float) -> Tuple[List[str], List[str]]:
    """Gate the serve harness's BENCH_churn.json: mean forwarding rate
    must not drop, overall p99 must not grow, and the run must keep
    applying (and observing the effect of) the same number of updates."""
    lines: List[str] = []
    regressions: List[str] = []
    lines.append("churn bench diff: %s/%s (%s windows)" % (
        new.get("app", "?"), new.get("level", "?"), new.get("windows", "?")))

    o_sum, n_sum = old.get("summary") or {}, new.get("summary") or {}
    a = o_sum.get("mean_rate_gbps", 0.0)
    b = n_sum.get("mean_rate_gbps", 0.0)
    if a != b:
        lines.append("  mean rate: %.4f -> %.4f Gbps" % (a, b))
    if a > 0 and b < a * (1 - tolerance):
        regressions.append(
            "mean rate dropped %.4f -> %.4f Gbps (-%.1f%%, tolerance %.0f%%)"
            % (a, b, 100 * (a - b) / a, 100 * tolerance))

    o_lat = o_sum.get("latency") or {}
    n_lat = n_sum.get("latency") or {}
    a = o_lat.get("p99", 0.0)
    b = n_lat.get("p99", 0.0)
    if a != b:
        lines.append("  p99 latency: %g -> %g cycles" % (a, b))
    if a > 0 and b > a * (1 + tolerance):
        regressions.append(
            "p99 latency grew %g -> %g cycles (+%.1f%%, tolerance %.0f%%)"
            % (a, b, 100 * (b - a) / a, 100 * tolerance))

    a = o_sum.get("updates_applied", 0)
    b = n_sum.get("updates_applied", 0)
    if a != b:
        lines.append("  updates applied: %d -> %d" % (a, b))
        regressions.append("updates applied changed %d -> %d (the churn "
                           "schedule is part of the benchmark)" % (a, b))
    for key in ("drops", "stale_tx_total"):
        if o_sum.get(key) != n_sum.get(key):
            lines.append("  %s: %s -> %s" % (key, o_sum.get(key),
                                             n_sum.get(key)))
    if len(lines) == 1:
        lines.append("  summaries identical")
    return lines, regressions


# -- occupancy bench vs occupancy bench -----------------------------------------------


def diff_occupancy(old: dict, new: dict,
                   tolerance: float) -> Tuple[List[str], List[str]]:
    """Gate the sweep's BENCH_occupancy.json (stall-cycle attribution):
    the *explanation* of each rate point is part of the benchmark, so a
    changed bottleneck verdict is a regression just like a dropped
    rate. ``tolerance`` is fractional for rates and absolute for
    attribution shares (a share is already a fraction of total
    cycles)."""
    lines: List[str] = []
    regressions: List[str] = []
    o_cells = old.get("cells") or {}
    n_cells = new.get("cells") or {}
    lines.append("occupancy bench diff: %d -> %d cells"
                 % (len(o_cells), len(n_cells)))

    changed = False
    for key in sorted(set(o_cells) | set(n_cells)):
        a, b = o_cells.get(key), n_cells.get(key)
        if a is None:
            lines.append("  %s: only in new file" % key)
            changed = True
            continue
        if b is None:
            lines.append("  %s: vanished" % key)
            regressions.append("cell %s vanished from the new file" % key)
            changed = True
            continue
        if a == b:
            continue
        changed = True

        ov, nv = a.get("verdict") or {}, b.get("verdict") or {}
        if (ov.get("kind"), ov.get("channel")) != (nv.get("kind"),
                                                   nv.get("channel")):
            lines.append("  %s: verdict %s/%s -> %s/%s" % (
                key, ov.get("kind"), ov.get("channel"),
                nv.get("kind"), nv.get("channel")))
            regressions.append(
                "%s: bottleneck verdict changed %s(%s) -> %s(%s)"
                % (key, ov.get("kind"), ov.get("channel"),
                   nv.get("kind"), nv.get("channel")))

        ra, rb = a.get("rate_gbps", 0.0), b.get("rate_gbps", 0.0)
        if ra != rb:
            lines.append("  %s: rate %.3f -> %.3f Gbps" % (key, ra, rb))
        if ra > 0 and rb < ra * (1 - tolerance):
            regressions.append(
                "%s: rate dropped %.3f -> %.3f Gbps (-%.1f%%, tolerance "
                "%.0f%%)" % (key, ra, rb, 100 * (ra - rb) / ra,
                             100 * tolerance))

        o_sh, n_sh = a.get("shares") or {}, b.get("shares") or {}
        for cat in sorted(set(o_sh) | set(n_sh)):
            sa, sb = o_sh.get(cat, 0.0), n_sh.get(cat, 0.0)
            if sa == sb:
                continue
            lines.append("  %s: share[%s] %.4f -> %.4f" % (key, cat,
                                                           sa, sb))
            if abs(sb - sa) > tolerance:
                regressions.append(
                    "%s: %s share shifted %.4f -> %.4f (|delta| %.4f > "
                    "tolerance %.4f)" % (key, cat, sa, sb,
                                         abs(sb - sa), tolerance))
    if not changed:
        lines.append("  cells identical")
    return lines, regressions


# -- ffspeed bench vs ffspeed bench ---------------------------------------------------


def diff_ffspeed(old: dict, new: dict,
                 tolerance: float) -> Tuple[List[str], List[str]]:
    """Gate the fast-forward engine's BENCH_ffspeed.json: the modelled
    rate grid is the benchmark, so a vanished app/level/cell or a rate
    drop beyond ``tolerance`` (fractional) is a regression. Cells that
    carry an ``err_pct`` accuracy figure (written by the ffspeed
    benchmark, which also runs the converged cycle-accurate reference)
    must additionally stay within the file's own ``error_bound_pct`` --
    a fast model that drifted outside its documented bound is broken
    even if it got *faster*."""
    lines: List[str] = []
    regressions: List[str] = []
    bound = float(new.get("error_bound_pct") or
                  old.get("error_bound_pct") or 0.0)
    o_apps = old.get("apps") or {}
    n_apps = new.get("apps") or {}
    lines.append("ffspeed bench diff: %d -> %d apps, error bound %.1f%%"
                 % (len(o_apps), len(n_apps), bound))

    changed = False
    for app in sorted(set(o_apps) | set(n_apps)):
        if app not in n_apps:
            lines.append("  %s: vanished" % app)
            regressions.append("app %s vanished from the new file" % app)
            changed = True
            continue
        if app not in o_apps:
            lines.append("  %s: only in new file" % app)
            changed = True
        o_levels = (o_apps.get(app) or {}).get("levels") or {}
        n_levels = (n_apps.get(app) or {}).get("levels") or {}
        for level in sorted(set(o_levels) | set(n_levels)):
            key = "%s/%s" % (app, level)
            if level not in n_levels:
                lines.append("  %s: vanished" % key)
                regressions.append("level %s vanished from the new file"
                                   % key)
                changed = True
                continue
            o_cells = (o_levels.get(level) or {}).get("cells") or {}
            n_cells = (n_levels.get(level) or {}).get("cells") or {}
            for n_mes in sorted(set(o_cells) | set(n_cells),
                                key=lambda s: (len(s), s)):
                cell = "%s@%sME" % (key, n_mes)
                a, b = o_cells.get(n_mes), n_cells.get(n_mes)
                if b is None:
                    lines.append("  %s: vanished" % cell)
                    regressions.append("cell %s vanished from the new file"
                                       % cell)
                    changed = True
                    continue
                if a is not None and a == b:
                    continue
                changed = True
                ra = (a or {}).get("gbps", 0.0)
                rb = b.get("gbps", 0.0)
                if a is None:
                    lines.append("  %s: only in new file (%.4f Gbps, %s)"
                                 % (cell, rb, b.get("mode")))
                elif ra != rb:
                    lines.append("  %s: rate %.4f -> %.4f Gbps"
                                 % (cell, ra, rb))
                if a is not None and ra > 0 and rb < ra * (1 - tolerance):
                    regressions.append(
                        "%s: rate dropped %.4f -> %.4f Gbps (-%.1f%%, "
                        "tolerance %.0f%%)" % (cell, ra, rb,
                                               100 * (ra - rb) / ra,
                                               100 * tolerance))
                if a is not None and a.get("mode") != b.get("mode"):
                    lines.append("  %s: pricing mode %s -> %s"
                                 % (cell, a.get("mode"), b.get("mode")))
                err = b.get("err_pct")
                if err is not None and bound > 0 and abs(err) > bound:
                    regressions.append(
                        "%s: model error %.2f%% exceeds the documented "
                        "bound of %.1f%%" % (cell, err, bound))
    if not changed:
        lines.append("  grids identical")
    return lines, regressions


# -- tune bench vs tune bench ---------------------------------------------------------


def diff_tune(old: dict, new: dict,
              tolerance: float) -> Tuple[List[str], List[str]]:
    """Gate the autotuner's BENCH_tune.json: the tuned result *is* the
    benchmark, so a vanished app, a best confirmed rate dropping beyond
    ``tolerance`` (fractional), or the evidence pruning disappearing
    entirely (old run pruned regions, new run pruned none -- the
    pruner stopped consuming evidence) is a regression."""
    lines: List[str] = []
    regressions: List[str] = []
    o_apps = old.get("apps") or {}
    n_apps = new.get("apps") or {}
    lines.append("tune bench diff: %d -> %d apps"
                 % (len(o_apps), len(n_apps)))

    changed = False
    for app in sorted(set(o_apps) | set(n_apps)):
        if app not in n_apps:
            lines.append("  %s: vanished" % app)
            regressions.append("app %s vanished from the new file" % app)
            changed = True
            continue
        a, b = o_apps.get(app) or {}, n_apps[app] or {}
        if app not in o_apps:
            lines.append("  %s: only in new file" % app)
            changed = True
        if a == b:
            continue
        changed = True

        o_best, n_best = a.get("best") or {}, b.get("best") or {}
        ra = float(o_best.get("confirmed_gbps") or 0.0)
        rb = float(n_best.get("confirmed_gbps") or 0.0)
        if (o_best.get("config"), o_best.get("n_mes")) != \
                (n_best.get("config"), n_best.get("n_mes")):
            lines.append("  %s: best %s@%s -> %s@%s"
                         % (app, o_best.get("config"), o_best.get("n_mes"),
                            n_best.get("config"), n_best.get("n_mes")))
        if ra != rb:
            lines.append("  %s: best rate %.3f -> %.3f Gbps" % (app, ra, rb))
        if o_best and not n_best:
            regressions.append("%s: best configuration vanished "
                               "(nothing confirmed)" % app)
        elif ra > 0 and rb < ra * (1 - tolerance):
            regressions.append(
                "%s: best confirmed rate dropped %.3f -> %.3f Gbps "
                "(-%.1f%%, tolerance %.0f%%)"
                % (app, ra, rb, 100 * (ra - rb) / ra, 100 * tolerance))

        o_pruned = a.get("pruned_regions") or []
        n_pruned = b.get("pruned_regions") or []
        if len(o_pruned) != len(n_pruned):
            lines.append("  %s: pruned regions %d -> %d"
                         % (app, len(o_pruned), len(n_pruned)))
        if o_pruned and not n_pruned:
            regressions.append(
                "%s: evidence pruning vanished (%d regions -> 0); the "
                "pruner stopped consuming ledger evidence"
                % (app, len(o_pruned)))

        o_trials = a.get("trials") or []
        n_trials = b.get("trials") or []
        if len(o_trials) != len(n_trials):
            lines.append("  %s: trials %d -> %d"
                         % (app, len(o_trials), len(n_trials)))
    if not changed:
        lines.append("  tuning results identical")
    return lines, regressions


# -- CLI ------------------------------------------------------------------------------


def run_diff(old_path: str, new_path: str, tolerance: float = 0.05,
             gate: Optional[bool] = None) -> Tuple[str, int]:
    """(rendered_text, exit_code). ``gate=None`` means auto: bench diffs
    always gate; compile diffs gate only when asked."""
    old, new = _load(old_path), _load(new_path)
    if old["kind"] != new["kind"]:
        raise SystemExit2("cannot diff %s against %s" % (old["kind"],
                                                         new["kind"]))
    if old["kind"] == "compile_report":
        lines, regressions = diff_compile(old, new, tolerance,
                                          gate=bool(gate))
        fatal = bool(gate) and bool(regressions)
    elif old["kind"] == "bench":
        lines, regressions = diff_bench(old, new, tolerance)
        fatal = bool(regressions) if gate is None else bool(gate and
                                                            regressions)
    elif old["kind"] == "bench_churn":
        lines, regressions = diff_churn(old, new, tolerance)
        fatal = bool(regressions) if gate is None else bool(gate and
                                                            regressions)
    elif old["kind"] == "bench_occupancy":
        lines, regressions = diff_occupancy(old, new, tolerance)
        fatal = bool(regressions) if gate is None else bool(gate and
                                                            regressions)
    elif old["kind"] == "bench_ffspeed":
        lines, regressions = diff_ffspeed(old, new, tolerance)
        fatal = bool(regressions) if gate is None else bool(gate and
                                                            regressions)
    elif old["kind"] == "bench_tune":
        lines, regressions = diff_tune(old, new, tolerance)
        fatal = bool(regressions) if gate is None else bool(gate and
                                                            regressions)
    else:
        # _load() already validated against KNOWN_KINDS; keep the
        # dispatch total anyway so a kind added there without a branch
        # here fails loudly instead of falling through.
        raise UnknownKindError("unsupported kind %r" % old["kind"])
    if regressions:
        lines.append("REGRESSIONS:")
        lines.extend("  " + r for r in regressions)
    else:
        lines.append("no regressions beyond tolerance")
    return "\n".join(lines), (EXIT_REGRESSION if fatal else 0)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff two compile reports or two BENCH_*.json runs; "
                    "exit %d on regressions beyond tolerance."
                    % EXIT_REGRESSION)
    ap.add_argument("old", help="baseline file")
    ap.add_argument("new", help="candidate file")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional drop before a rate/code-size "
                         "change counts as a regression (default: "
                         "%(default)s)")
    ap.add_argument("--gate", action="store_true",
                    help="for compile-report diffs: exit %d on regressions "
                         "(bench diffs always gate)" % EXIT_REGRESSION)
    args = ap.parse_args(argv)
    try:
        text, code = run_diff(args.old, args.new, args.tolerance,
                              gate=True if args.gate else None)
    except UnknownKindError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_REGRESSION
    except SystemExit2 as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
