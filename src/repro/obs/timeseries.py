"""Windowed, streaming observability over simulated time.

Everything else in ``repro.obs`` is run-to-completion: metrics are
dumped after the run, and :class:`~repro.obs.trace.PacketTracer`
accumulates every latency before computing percentiles once at the end.
A long-running service (``python -m repro.serve``) needs the opposite
shape -- forwarding rate, latency percentiles and drop causes *as
functions of sim time, across control-plane updates* -- in bounded
memory. This module provides it:

* :class:`StreamingQuantile` / :class:`QuantileSketch` -- online
  quantile estimation in O(1) memory (exact up to ``exact_limit``
  observations, then the P^2 algorithm of Jain & Chlamtac, CACM 1985,
  seeded from the exact prefix). Accuracy bounds are documented in
  DESIGN.md section 11 and enforced by ``tests/test_timeseries.py``.
* :class:`TimeseriesCollector` -- closes a window record every
  ``window_cycles`` of simulated time. It is *pulled* by
  :meth:`repro.ixp.chip.IXP2400.run` through the same ``next_t`` /
  catch-up contract as :class:`~repro.obs.sim.SimSampler`, so attaching
  one never perturbs event order (tests/test_obs.py proves enabled and
  disabled runs stay bit-identical). Per-window counters are drained
  from a private :class:`~repro.obs.metrics.MetricsRegistry` via
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot_and_reset` at each
  boundary; control-plane events stamp the window containing their
  timestamp (an event exactly *on* a boundary ``kW`` belongs to window
  ``k``: the chip ticks elapsed boundaries before running the event's
  action).
* :func:`update_impact` -- before/during/after deltas (rate, p99,
  drops) in the K windows around each control-plane event.
* Deterministic JSONL export (:meth:`TimeseriesCollector.dump_jsonl`,
  :func:`load_timeseries`), rendered by
  ``python -m repro.obs.report timeline``.
"""

from __future__ import annotations

import bisect
import json
import os
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Quantiles every sketch tracks (the report's standard columns).
SKETCH_QUANTILES = (0.5, 0.95, 0.99)

#: Exact-prefix size before a StreamingQuantile switches to P^2 markers.
DEFAULT_EXACT_LIMIT = 256


def _nearest_rank(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (same convention as
    :func:`repro.obs.trace._percentile`)."""
    n = len(sorted_vals)
    rank = max(1, min(n, int(-(-q * n // 1))))  # ceil(q*n), clamped
    return sorted_vals[rank - 1]


class StreamingQuantile:
    """One online quantile estimate in O(1) memory.

    Exact (sorted insert, nearest-rank) until ``exact_limit``
    observations, then the five P^2 markers are seeded from the exact
    prefix and updated per observation with the parabolic/linear rules
    of Jain & Chlamtac. Estimates below the limit are *exact*; above it
    the error is bounded in rank (see DESIGN.md section 11).
    """

    __slots__ = ("q", "exact_limit", "count", "_exact", "_hts", "_pos",
                 "_des", "_inc")

    def __init__(self, q: float, exact_limit: int = DEFAULT_EXACT_LIMIT):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1), got %r" % q)
        self.q = q
        self.exact_limit = max(5, exact_limit)
        self.count = 0
        self._exact: Optional[List[float]] = []
        self._hts: List[float] = []   # marker heights
        self._pos: List[float] = []   # marker positions (1-based)
        self._des: List[float] = []   # desired positions
        self._inc: List[float] = []   # desired-position increments

    def _seed(self) -> None:
        """Switch from the exact prefix to P^2 markers placed at the
        ideal positions for the current count."""
        vals = self._exact
        assert vals is not None
        n = len(vals)
        fracs = [0.0, self.q / 2, self.q, (1 + self.q) / 2, 1.0]
        pos = [1.0 + round((n - 1) * f) for f in fracs]
        # Positions must be strictly increasing (n >= 5 guarantees room).
        for i in range(1, 5):
            if pos[i] <= pos[i - 1]:
                pos[i] = pos[i - 1] + 1
        for i in range(3, -1, -1):
            if pos[i] >= pos[i + 1]:
                pos[i] = pos[i + 1] - 1
        self._hts = [vals[int(p) - 1] for p in pos]
        self._pos = pos
        self._des = [1.0 + (n - 1) * f for f in fracs]
        self._inc = fracs
        self._exact = None

    def add(self, x: float) -> None:
        self.count += 1
        if self._exact is not None:
            bisect.insort(self._exact, x)
            if len(self._exact) >= self.exact_limit:
                self._seed()
            return
        hts, pos = self._hts, self._pos
        if x < hts[0]:
            hts[0] = x
            k = 0
        elif x >= hts[4]:
            hts[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= hts[i]:
                    k = i
        for i in range(k + 1, 5):
            pos[i] += 1
        des, inc = self._des, self._inc
        for i in range(5):
            des[i] += inc[i]
        for i in range(1, 4):
            d = des[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or \
               (d <= -1 and pos[i - 1] - pos[i] < -1):
                d = 1.0 if d >= 1 else -1.0
                h = self._parabolic(i, d)
                if hts[i - 1] < h < hts[i + 1]:
                    hts[i] = h
                else:
                    hts[i] = self._linear(i, d)
                pos[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        hts, pos = self._hts, self._pos
        return hts[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (hts[i + 1] - hts[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (hts[i] - hts[i - 1])
            / (pos[i] - pos[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        hts, pos = self._hts, self._pos
        j = i + int(d)
        return hts[i] + d * (hts[j] - hts[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """Current estimate (0.0 before any observation)."""
        if self._exact is not None:
            if not self._exact:
                return 0.0
            return _nearest_rank(self._exact, self.q)
        return self._hts[2]


class QuantileSketch:
    """count/min/mean/max plus p50/p95/p99 estimates, O(1) memory."""

    __slots__ = ("count", "total", "min", "max", "_est")

    def __init__(self, exact_limit: int = DEFAULT_EXACT_LIMIT):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._est = tuple(StreamingQuantile(q, exact_limit)
                          for q in SKETCH_QUANTILES)

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        if self.min is None or x < self.min:
            self.min = x
        if self.max is None or x > self.max:
            self.max = x
        for est in self._est:
            est.add(x)

    def summary(self) -> Dict[str, float]:
        """Same keys as :meth:`PacketTracer.latency_summary`."""
        if self.count == 0:
            return {"count": 0, "min": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "mean": 0.0, "max": 0.0}
        out = {"count": self.count, "min": self.min,
               "mean": round(self.total / self.count, 3), "max": self.max}
        for q, est in zip(SKETCH_QUANTILES, self._est):
            out["p%g" % (q * 100)] = round(est.value(), 3)
        return out


class TimeseriesCollector:
    """Closes one window record per ``window_cycles`` of simulated time.

    Attach with ``chip.window = collector`` (or pass ``timeseries=`` to
    :func:`repro.rts.system.run_on_simulator`); the chip calls
    :meth:`tick` once per elapsed ``next_t`` boundary, exactly like the
    :class:`~repro.obs.sim.SimSampler` pull. Window ``k`` covers
    ``[k*W, (k+1)*W)``; :meth:`annotate` stamps the window whose
    interval contains ``t``.

    Counter *sources* are callables invoked at each boundary to bump
    counters in the collector's private registry by the delta since the
    previous boundary; the registry is then drained with
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot_and_reset` into
    the window record, so anything recorded through the registry during
    the window (e.g. control-plane bookkeeping) lands in the same
    record.
    """

    def __init__(self, window_cycles: float, cycles_hz: float = 600e6,
                 exact_limit: int = DEFAULT_EXACT_LIMIT):
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = float(window_cycles)
        self.cycles_hz = cycles_hz
        self.exact_limit = exact_limit
        self.next_t = self.window_cycles
        self.registry = MetricsRegistry(enabled=True)
        self.windows: List[Dict[str, object]] = []
        self.cumulative = QuantileSketch(exact_limit)
        self.finished_at: Optional[float] = None
        self._index = 0
        self._t_start = 0.0
        self._sketch = QuantileSketch(exact_limit)
        self._sources: List[Callable[[MetricsRegistry], None]] = []
        self._pending: Dict[int, List[Dict[str, object]]] = {}

    # -- wiring ------------------------------------------------------------------

    def add_source(self, fn: Callable[[MetricsRegistry], None]) -> None:
        """Register a boundary callback that increments counters in the
        collector's registry by the delta accrued this window."""
        self._sources.append(fn)

    def attach(self, rx=None, tx=None, tracer=None) -> None:
        """Wire the standard engine counters (Rx offered/drops, Tx
        packets/bytes, tracer drop causes) as delta sources, and make a
        streaming tracer feed its latencies into the window sketches."""
        if rx is not None:
            prev = {"sent": 0, "freelist": 0, "ring_full": 0}

            def rx_source(reg: MetricsRegistry, rx=rx, prev=prev) -> None:
                reg.counter("rx.offered").inc(rx.sent - prev["sent"])
                reg.counter("rx.dropped", cause="freelist_empty").inc(
                    rx.dropped_freelist - prev["freelist"])
                reg.counter("rx.dropped", cause="ring_full").inc(
                    rx.dropped_ring_full - prev["ring_full"])
                prev["sent"] = rx.sent
                prev["freelist"] = rx.dropped_freelist
                prev["ring_full"] = rx.dropped_ring_full

            self.add_source(rx_source)
        if tx is not None:
            prev_tx = {"packets": 0, "bytes": 0}

            def tx_source(reg: MetricsRegistry, tx=tx,
                          prev=prev_tx) -> None:
                reg.counter("tx.packets").inc(tx.packets_out() - prev["packets"])
                reg.counter("tx.bytes").inc(tx.bytes_out - prev["bytes"])
                prev["packets"] = tx.packets_out()
                prev["bytes"] = tx.bytes_out

            self.add_source(tx_source)
        if tracer is not None:
            prev_drops: Dict[str, int] = {}

            def drop_source(reg: MetricsRegistry, tracer=tracer,
                            prev=prev_drops) -> None:
                for cause in sorted(tracer.drops):
                    n = tracer.drops[cause]
                    reg.counter("drop", cause=cause).inc(n - prev.get(cause, 0))
                    prev[cause] = n

            self.add_source(drop_source)
            if getattr(tracer, "streaming", False):
                tracer.latency_sink = self.observe_latency

    # -- per-event feeds ---------------------------------------------------------

    def observe_latency(self, latency_cycles: float) -> None:
        self._sketch.add(latency_cycles)
        self.cumulative.add(latency_cycles)

    def window_index(self, t: float) -> int:
        return int(t // self.window_cycles)

    def annotate(self, t: float, kind: str, **detail: object) -> None:
        """Stamp an event onto the window containing ``t``. Events land
        in the window's ``events`` list when it closes."""
        ev: Dict[str, object] = {"t": round(t, 3), "kind": kind}
        if detail:
            ev.update(detail)
        self._pending.setdefault(self.window_index(t), []).append(ev)

    # -- window boundaries (pulled by chip.run) ----------------------------------

    def tick(self, boundary: float) -> None:
        """Close the current window at ``boundary`` and start the next.
        Called by the chip's run loop for every elapsed ``next_t``."""
        self._close(boundary, partial=False)
        self.next_t = boundary + self.window_cycles

    def finish(self, t: float) -> None:
        """Close a trailing partial window (flagged ``partial``) and any
        stranded annotations at the end of the run."""
        if t > self._t_start:
            # A run ending exactly on a boundary closed a *full* window
            # (the chip only ticks boundaries strictly before the next
            # event, so the final one falls to us).
            partial = (t - self._t_start) < self.window_cycles - 1e-9
            self._close(t, partial=partial)
        # Annotations for windows that never closed (events scheduled
        # past the end of the run) must not vanish silently.
        if self.windows:
            for idx in sorted(self._pending):
                for ev in self._pending[idx]:
                    self.windows[-1]["events"].append(ev)
        self._pending.clear()
        self.finished_at = t

    def _close(self, t_end: float, partial: bool) -> None:
        counters: Dict[str, float] = {}
        for src in self._sources:
            src(self.registry)
        for rec in self.registry.snapshot_and_reset():
            key = rec["name"]
            labels = rec.get("labels")
            if labels:
                key += "{%s}" % ",".join(
                    "%s=%s" % kv for kv in sorted(labels.items()))
            counters[key] = rec["value"]
        span_s = max((t_end - self._t_start) / self.cycles_hz, 1e-12)
        rate = counters.get("tx.bytes", 0) * 8 / span_s / 1e9
        rec: Dict[str, object] = {
            "window": self._index,
            "t_start": round(self._t_start, 3),
            "t_end": round(t_end, 3),
            "rate_gbps": round(rate, 6),
            "latency": self._sketch.summary(),
            "counters": counters,
            "events": self._pending.pop(self._index, []),
        }
        if partial:
            rec["partial"] = True
        self.windows.append(rec)
        self._index += 1
        self._t_start = t_end
        self._sketch = QuantileSketch(self.exact_limit)

    # -- export ------------------------------------------------------------------

    def to_records(self,
                   header: Optional[Dict[str, object]] = None
                   ) -> List[Dict[str, object]]:
        head: Dict[str, object] = {
            "type": "timeseries_header",
            "window_cycles": self.window_cycles,
            "windows": len(self.windows),
            "finished_at": self.finished_at,
            "latency_total": self.cumulative.summary(),
        }
        if header:
            head.update(header)
        out: List[Dict[str, object]] = [head]
        for w in self.windows:
            rec = {"type": "window"}
            rec.update(w)
            out.append(rec)
        return out

    def dump_jsonl(self, path: str,
                   header: Optional[Dict[str, object]] = None) -> str:
        d = os.path.dirname(os.path.abspath(path))
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as fh:
            for rec in self.to_records(header):
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return path


def load_timeseries(path: str) -> Tuple[Dict[str, object],
                                        List[Dict[str, object]]]:
    """(header, window_records) from a collector's JSONL dump."""
    header: Dict[str, object] = {}
    windows: List[Dict[str, object]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "timeseries_header":
                header = rec
            elif rec.get("type") == "window":
                windows.append(rec)
    return header, windows


# -- update-impact analysis -------------------------------------------------------


def window_drops(window: Dict[str, object]) -> float:
    """Total dropped packets recorded in one window (tracer drop causes
    plus Rx-engine drops)."""
    counters = window.get("counters") or {}
    return sum(v for k, v in counters.items()
               if k == "drop" or k.startswith(("drop{", "rx.dropped")))


_drops = window_drops


def _phase_stats(windows: List[Dict[str, object]]) -> Dict[str, float]:
    if not windows:
        return {"windows": 0, "rate_gbps": 0.0, "p50": 0.0, "p99": 0.0,
                "drops": 0.0}
    n = len(windows)
    return {
        "windows": n,
        "rate_gbps": round(sum(w.get("rate_gbps", 0.0)
                               for w in windows) / n, 6),
        "p50": round(sum((w.get("latency") or {}).get("p50", 0.0)
                         for w in windows) / n, 3),
        "p99": round(sum((w.get("latency") or {}).get("p99", 0.0)
                         for w in windows) / n, 3),
        "drops": sum(_drops(w) for w in windows),
    }


def update_impact(windows: Iterable[Dict[str, object]],
                  k: int = 2) -> List[Dict[str, object]]:
    """Latency/drop/rate deltas in the ``k`` windows around each
    control-plane event.

    For every event annotated onto a window, compares the mean
    rate/p50/p99 (and summed drops) over the ``k`` windows *before* the
    event's window, the event window itself, and the ``k`` windows
    *after* it. ``delta_*`` fields are during-minus-before; windows off
    either end of the run simply shrink the phase.
    """
    wins = list(windows)
    by_index = {int(w.get("window", i)): w for i, w in enumerate(wins)}
    out: List[Dict[str, object]] = []
    for w in wins:
        idx = int(w.get("window", 0))
        for ev in w.get("events") or []:
            before = [by_index[i] for i in range(idx - k, idx)
                      if i in by_index]
            after = [by_index[i] for i in range(idx + 1, idx + 1 + k)
                     if i in by_index]
            b, d, a = (_phase_stats(before), _phase_stats([w]),
                       _phase_stats(after))
            rec: Dict[str, object] = {"window": idx}
            rec.update(ev)
            rec["before"] = b
            rec["during"] = d
            rec["after"] = a
            rec["delta_p99"] = round(d["p99"] - b["p99"], 3)
            rec["delta_rate_gbps"] = round(d["rate_gbps"] - b["rate_gbps"], 6)
            rec["delta_drops"] = d["drops"] - b["drops"]
            out.append(rec)
    out.sort(key=lambda r: (r["window"], r.get("t", 0.0)))
    return out
