"""Render a metrics JSONL dump as a human-readable text report.

Usage::

    python -m repro.obs.report [metrics.jsonl] [--only key=value ...]
    python -m repro.obs.report [metrics.jsonl] --json
    python -m repro.obs.report explain compile_report.json
    python -m repro.obs.report timeline timeline.jsonl

The input is whatever :meth:`repro.obs.MetricsRegistry.dump_jsonl`
wrote (benchmarks write ``benchmarks/results/metrics.jsonl``). Records
are grouped into *scopes* by their non-structural labels (e.g. the
``app``/``level`` a benchmark tagged), then rendered section by
section: compile stage timings, IR size per stage, opt-pass counters,
ring statistics, per-ME utilization, memory-channel load, Rx/Tx
accounting. ``--json`` emits the same per-scope data machine-readably.

The ``explain`` subcommand renders a ``compile_report.json`` written by
:mod:`repro.obs.ledger`: the plan, per-pass optimization results, and
every recorded optimization decision with its reason and evidence.

The ``timeline`` subcommand renders a timeseries JSONL dump written by
:class:`repro.obs.timeseries.TimeseriesCollector` (e.g. by
``python -m repro.serve --timeline``): one row per window
(rate/p50/p95/p99/drops) with update markers, then the update-impact
table around each control-plane event.

The ``bottleneck`` subcommand renders a ``BENCH_occupancy.json``
written by ``python -m repro.sweep --profile`` (see
:mod:`repro.obs.profile`): per-(app, level) stall-cycle attribution
tables, one row per ME count, with each run's one-line bottleneck
verdict underneath -- the "why did the curve plateau?" view of the
Figure 13-15 rate data.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

#: Labels that select a row *within* a section rather than a scope.
STRUCTURAL_LABELS = {"stage", "ring", "me", "channel", "cause", "kind",
                     "engine", "passname", "aggregate", "stat", "src"}

#: Render compiler stages in pipeline order, not alphabetically.
STAGE_ORDER = ["frontend", "lower", "initial", "profile", "scalar",
               "aggregate", "pac", "soar", "phr", "swc", "verify",
               "codegen"]


def load_records(path: str) -> List[dict]:
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def split_runs(records: List[dict]) -> List[dict]:
    """Resolve a (possibly) multi-run JSONL stream into plain metric
    records.

    Registry dumps appended to one file (``dump_jsonl(append=True,
    header=...)``) are delimited by ``run_header`` records. When a file
    holds more than one run, each metric record gains a ``run`` label
    (the header's ``run`` id, or a 1-based ordinal) so the scope
    grouping keeps runs apart instead of silently interleaving them;
    single-run files render exactly as before. Header records are
    consumed either way.
    """
    headers = [r for r in records if r.get("type") == "run_header"]
    multi = len(headers) > 1 or (headers and
                                 records[0].get("type") != "run_header")
    out: List[dict] = []
    run_id: Optional[str] = None
    ordinal = 0
    for rec in records:
        if rec.get("type") == "run_header":
            ordinal += 1
            run_id = str(rec.get("run") or "run%d" % ordinal)
            continue
        if multi:
            rec = dict(rec)
            labels = dict(rec.get("labels") or {})
            labels["run"] = run_id if run_id is not None else "run0"
            rec["labels"] = labels
        out.append(rec)
    return out


def _scope_key(rec: dict) -> Tuple:
    labels = rec.get("labels") or {}
    return tuple(sorted((k, v) for k, v in labels.items()
                        if k not in STRUCTURAL_LABELS))


def _slabel(rec: dict, key: str, default="") -> str:
    return str((rec.get("labels") or {}).get(key, default))


def _stage_order(recs: List[dict]):
    """Sort key for stage names: pipeline order for known stages, then
    unknown stages in the order they first appear in the records (never
    silently alphabetized into the middle of the pipeline)."""
    first_seen: Dict[str, int] = {}
    for r in recs:
        stage = (r.get("labels") or {}).get("stage")
        if stage is not None and stage not in STAGE_ORDER:
            first_seen.setdefault(str(stage), len(first_seen))

    def key(stage: str) -> Tuple[int, int, str]:
        try:
            return (0, STAGE_ORDER.index(stage), stage)
        except ValueError:
            return (1, first_seen.get(stage, len(first_seen)), stage)

    return key


def _table(lines: List[str], header: List[str], rows: List[List[str]],
           indent: str = "  ") -> None:
    if not rows:
        return
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(header)]
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines.append(indent + fmt % tuple(header))
    for row in rows:
        lines.append(indent + fmt % tuple(row))


def _pick(recs: List[dict], rtype: str, name: str) -> List[dict]:
    return [r for r in recs if r["type"] == rtype and r["name"] == name]


def _gauge_by(recs: List[dict], name: str, label: str) -> Dict[str, float]:
    return {_slabel(r, label): r["value"] for r in _pick(recs, "gauge", name)}


def _render_scope(recs: List[dict], lines: List[str]) -> None:
    stage_key = _stage_order(recs)

    # -- compile stage timings ---------------------------------------------------
    timers = _pick(recs, "timer", "compile.stage")
    if timers:
        lines.append("Compile stages (wall time):")
        rows = []
        total = 0.0
        for r in sorted(timers, key=lambda r: stage_key(_slabel(r, "stage"))):
            total += r["total_s"]
            rows.append([_slabel(r, "stage"), str(r["count"]),
                         "%.1f" % (r["total_s"] * 1e3)])
        rows.append(["TOTAL", "", "%.1f" % (total * 1e3)])
        _table(lines, ["stage", "calls", "ms"], rows)
        lines.append("")

    # -- IR size per stage -------------------------------------------------------
    fns = _gauge_by(recs, "compile.ir.functions", "stage")
    blocks = _gauge_by(recs, "compile.ir.blocks", "stage")
    instrs = _gauge_by(recs, "compile.ir.instrs", "stage")
    if instrs:
        lines.append("IR size after each stage:")
        rows = []
        prev = None
        for stage in sorted(instrs, key=stage_key):
            n = instrs[stage]
            delta = "" if prev is None else "%+d" % (n - prev)
            prev = n
            rows.append([stage, "%d" % fns.get(stage, 0),
                         "%d" % blocks.get(stage, 0), "%d" % n, delta])
        _table(lines, ["stage", "functions", "blocks", "instrs", "delta"], rows)
        lines.append("")

    # -- opt-pass counters -------------------------------------------------------
    opt = [r for r in recs if r["name"].startswith("opt.")
           and r["type"] in ("counter", "gauge")]
    if opt:
        lines.append("Optimization passes:")
        rows = []
        for r in sorted(opt, key=lambda r: (r["name"], _slabel(r, "passname"))):
            name = r["name"]
            extra = _slabel(r, "passname")
            if extra:
                name += "{%s}" % extra
            rows.append([name, "%g" % r["value"]])
        _table(lines, ["counter", "value"], rows)
        hist = _pick(recs, "histogram", "opt.scalar.iterations")
        for h in hist:
            lines.append("  scalar fixpoint: %d function runs, "
                         "%.1f iterations avg (max %g)"
                         % (h["count"], h["mean"], h["max"] or 0))
        lines.append("")

    # -- hot Baker source lines (functional-profiler attribution) ----------------
    hot = _pick(recs, "counter", "profile.line_instrs")
    if hot:
        hot.sort(key=lambda r: (-r["value"], _slabel(r, "src")))
        total_attr = sum(r["value"] for r in hot)
        lines.append("Hot Baker source lines (interpreted IR instrs, top %d):"
                     % min(10, len(hot)))
        rows = []
        for rank, r in enumerate(hot[:10], 1):
            share = r["value"] / total_attr if total_attr else 0.0
            rows.append(["%d" % rank, _slabel(r, "src"),
                         "%d" % r["value"], "%.1f%%" % (share * 100)])
        _table(lines, ["#", "source line", "instrs", "share"], rows)
        lines.append("")

    # -- ring statistics ---------------------------------------------------------
    caps = _gauge_by(recs, "sim.ring.capacity", "ring")
    if caps:
        depth = _gauge_by(recs, "sim.ring.depth", "ring")
        maxd = _gauge_by(recs, "sim.ring.max_depth", "ring")
        puts = _gauge_by(recs, "sim.ring.puts", "ring")
        gets = _gauge_by(recs, "sim.ring.gets", "ring")
        drops = _gauge_by(recs, "sim.ring.drops", "ring")
        empty = _gauge_by(recs, "sim.ring.empty_gets", "ring")
        occ = {_slabel(r, "ring"): r["summary"]
               for r in _pick(recs, "series", "sim.ring_depth")}
        lines.append("Rings (occupancy / drops):")
        rows = []
        for ring in sorted(caps):
            s = occ.get(ring)
            rows.append([
                ring, "%d" % caps[ring], "%d" % depth.get(ring, 0),
                "%d" % maxd.get(ring, 0), "%d" % puts.get(ring, 0),
                "%d" % gets.get(ring, 0), "%d" % drops.get(ring, 0),
                "%d" % empty.get(ring, 0),
                "%.1f" % s["mean"] if s else "-",
            ])
        _table(lines, ["ring", "cap", "depth", "max", "puts", "gets",
                       "drops", "empty_gets", "occ.mean"], rows)
        lines.append("")

    # -- per-ME utilization ------------------------------------------------------
    util = _gauge_by(recs, "sim.me.utilization", "me")
    if util:
        instrs_g = _gauge_by(recs, "sim.me.executed_instrs", "me")
        lines.append("Microengines:")
        rows = []
        for me in sorted(util, key=lambda m: int(m)):
            rows.append([me, "%.1f%%" % (util[me] * 100),
                         "%d" % instrs_g.get(me, 0)])
        _table(lines, ["me", "busy", "instrs"], rows)
        lines.append("")

    # -- memory channels ---------------------------------------------------------
    busy = _gauge_by(recs, "sim.mem.busy_cycles", "channel")
    if busy:
        mutil = _gauge_by(recs, "sim.mem.utilization", "channel")
        lines.append("Memory channels:")
        rows = []
        for ch in sorted(busy):
            u = mutil.get(ch)
            rows.append([ch, "%.0f" % busy[ch],
                         "%.1f%%" % (u * 100) if u is not None else "-"])
        _table(lines, ["channel", "busy_cycles", "util"], rows)
        lines.append("")

    # -- Rx/Tx accounting --------------------------------------------------------
    rx_offered = _pick(recs, "gauge", "sim.rx.offered")
    if rx_offered:
        drops = {(_slabel(r, "cause")): r["value"]
                 for r in _pick(recs, "gauge", "sim.rx.dropped")}
        tx_pkts = _pick(recs, "gauge", "sim.tx.packets")
        tx_bytes = _pick(recs, "gauge", "sim.tx.bytes")
        leaks = {(_slabel(r, "engine"), _slabel(r, "kind")): r["value"]
                 for r in _pick(recs, "gauge", "sim.leaks")}
        lines.append("Rx/Tx:")
        lines.append("  rx offered=%d  dropped[freelist_empty]=%d  "
                     "dropped[ring_full]=%d"
                     % (rx_offered[0]["value"],
                        drops.get("freelist_empty", 0),
                        drops.get("ring_full", 0)))
        if tx_pkts:
            lines.append("  tx packets=%d  bytes=%d"
                         % (tx_pkts[0]["value"],
                            tx_bytes[0]["value"] if tx_bytes else 0))
        if leaks:
            lines.append("  recycle leaks: "
                         + "  ".join("%s.%s=%d" % (e, k, v)
                                     for (e, k), v in sorted(leaks.items())))
        lines.append("")

    # -- per-packet latency (PacketTracer summary) -------------------------------
    lat = {_slabel(r, "stat"): r["value"]
           for r in _pick(recs, "gauge", "sim.pkt.latency_cycles")}
    if lat:
        lines.append("Packet latency (Rx arrival -> Tx, ME cycles):")
        lines.append("  n=%d  p50=%g  p95=%g  p99=%g  mean=%g  "
                     "min=%g  max=%g"
                     % (lat.get("count", 0), lat.get("p50", 0),
                        lat.get("p95", 0), lat.get("p99", 0),
                        lat.get("mean", 0), lat.get("min", 0),
                        lat.get("max", 0)))
        traced = _pick(recs, "gauge", "sim.pkt.traced")
        untraced = _pick(recs, "gauge", "sim.pkt.untraced")
        if traced:
            lines.append("  traced packets=%d  untraced=%d"
                         % (traced[0]["value"],
                            untraced[0]["value"] if untraced else 0))
        pkt_drops = {_slabel(r, "cause"): r["value"]
                     for r in _pick(recs, "gauge", "sim.pkt.drops")}
        if pkt_drops:
            lines.append("  drops: " + "  ".join(
                "%s=%d" % kv for kv in sorted(pkt_drops.items())))
        lines.append("")

    # -- anything else (loader layout, run summary gauges, ...) ------------------
    known_prefixes = ("compile.", "opt.", "sim.ring", "sim.me",
                      "sim.mem.", "sim.rx.", "sim.tx.", "sim.leaks",
                      "sim.pkt.", "profile.line_instrs")
    other = [r for r in recs
             if not r["name"].startswith(known_prefixes)
             and r["type"] in ("counter", "gauge", "timer")]
    if other:
        lines.append("Other:")
        rows = []
        for r in sorted(other, key=lambda r: r["name"]):
            labels = {k: v for k, v in (r.get("labels") or {}).items()
                      if k in STRUCTURAL_LABELS}
            name = r["name"]
            if labels:
                name += "{%s}" % ",".join(
                    "%s=%s" % kv for kv in sorted(labels.items()))
            if r["type"] == "timer":
                val = "%.1f ms / %d calls" % (r["total_s"] * 1e3, r["count"])
            else:
                val = "%g" % r["value"]
            rows.append([name, val])
        _table(lines, ["metric", "value"], rows)
        lines.append("")


def _scope_json(recs: List[dict]) -> dict:
    """The same data the rendered tables show, as one JSON-ready dict."""
    stage_key = _stage_order(recs)
    out: dict = {}

    timers = _pick(recs, "timer", "compile.stage")
    if timers:
        out["compile_stages"] = {
            _slabel(r, "stage"): {"calls": r["count"],
                                  "ms": round(r["total_s"] * 1e3, 3)}
            for r in timers
        }
    instrs = _gauge_by(recs, "compile.ir.instrs", "stage")
    if instrs:
        fns = _gauge_by(recs, "compile.ir.functions", "stage")
        blocks = _gauge_by(recs, "compile.ir.blocks", "stage")
        out["ir"] = {
            stage: {"functions": fns.get(stage, 0),
                    "blocks": blocks.get(stage, 0),
                    "instrs": instrs[stage]}
            for stage in sorted(instrs, key=stage_key)
        }
    opt = [r for r in recs if r["name"].startswith("opt.")
           and r["type"] in ("counter", "gauge")]
    if opt:
        counters = {}
        for r in opt:
            name = r["name"]
            extra = _slabel(r, "passname")
            if extra:
                name += "{%s}" % extra
            counters[name] = r["value"]
        out["opt"] = counters
    hot = _pick(recs, "counter", "profile.line_instrs")
    if hot:
        hot = sorted(hot, key=lambda r: (-r["value"], _slabel(r, "src")))
        out["hot_lines"] = [
            {"src": _slabel(r, "src"), "instrs": r["value"]} for r in hot
        ]
    caps = _gauge_by(recs, "sim.ring.capacity", "ring")
    if caps:
        fields = ["depth", "max_depth", "puts", "gets", "drops",
                  "empty_gets"]
        per = {f: _gauge_by(recs, "sim.ring.%s" % f, "ring") for f in fields}
        out["rings"] = {
            ring: dict({"capacity": caps[ring]},
                       **{f: per[f].get(ring, 0) for f in fields})
            for ring in sorted(caps)
        }
    util = _gauge_by(recs, "sim.me.utilization", "me")
    if util:
        instrs_g = _gauge_by(recs, "sim.me.executed_instrs", "me")
        out["mes"] = {
            me: {"utilization": util[me],
                 "executed_instrs": instrs_g.get(me, 0)}
            for me in sorted(util, key=lambda m: int(m))
        }
    busy = _gauge_by(recs, "sim.mem.busy_cycles", "channel")
    if busy:
        mutil = _gauge_by(recs, "sim.mem.utilization", "channel")
        out["mem_channels"] = {
            ch: {"busy_cycles": busy[ch], "utilization": mutil.get(ch)}
            for ch in sorted(busy)
        }
    rx_offered = _pick(recs, "gauge", "sim.rx.offered")
    if rx_offered:
        drops = {_slabel(r, "cause"): r["value"]
                 for r in _pick(recs, "gauge", "sim.rx.dropped")}
        tx_pkts = _pick(recs, "gauge", "sim.tx.packets")
        tx_bytes = _pick(recs, "gauge", "sim.tx.bytes")
        out["rx_tx"] = {
            "rx_offered": rx_offered[0]["value"],
            "rx_dropped": drops,
            "tx_packets": tx_pkts[0]["value"] if tx_pkts else 0,
            "tx_bytes": tx_bytes[0]["value"] if tx_bytes else 0,
        }
    lat = {_slabel(r, "stat"): r["value"]
           for r in _pick(recs, "gauge", "sim.pkt.latency_cycles")}
    if lat:
        out["latency_cycles"] = lat
    return out


def render_json(records: List[dict],
                only: Optional[Dict[str, str]] = None) -> dict:
    """Machine-readable counterpart of :func:`render`."""
    records = split_runs(records)
    scopes: "OrderedDict[Tuple, List[dict]]" = OrderedDict()
    for rec in records:
        if only:
            labels = rec.get("labels") or {}
            if any(str(labels.get(k)) != v for k, v in only.items()):
                continue
        scopes.setdefault(_scope_key(rec), []).append(rec)
    return {
        "kind": "metrics_report",
        "scopes": [
            {"labels": dict(key), "sections": _scope_json(scopes[key])}
            for key in sorted(scopes)
        ],
    }


def render(records: List[dict],
           only: Optional[Dict[str, str]] = None) -> str:
    records = split_runs(records)
    scopes: "OrderedDict[Tuple, List[dict]]" = OrderedDict()
    for rec in records:
        if only:
            labels = rec.get("labels") or {}
            if any(str(labels.get(k)) != v for k, v in only.items()):
                continue
        scopes.setdefault(_scope_key(rec), []).append(rec)

    lines: List[str] = []
    for key in sorted(scopes):
        header = " ".join("%s=%s" % kv for kv in key) or "(unlabelled)"
        lines.append("=" * 72)
        lines.append(header)
        lines.append("=" * 72)
        _render_scope(scopes[key], lines)
    if not lines:
        lines.append("(no matching records)")
    return "\n".join(lines)


# -- explain: render a compile_report.json -------------------------------------------


def _fmt_evidence(ev: dict) -> str:
    return "  ".join("%s=%g" % (k, v) if isinstance(v, (int, float))
                     else "%s=%s" % (k, v)
                     for k, v in sorted(ev.items()))


def render_explain(report: dict, pass_filter: Optional[str] = None) -> str:
    lines: List[str] = []
    head = "compile report"
    if report.get("app"):
        head += "  app=%s" % report["app"]
    head += "  level=%s  (schema v%s)" % (report.get("level"),
                                          report.get("version"))
    lines.append(head)
    ir = report.get("ir") or {}
    plan = report.get("plan") or {}
    lines.append("ir: %d functions, %d blocks, %d instrs" % (
        ir.get("functions", 0), ir.get("blocks", 0), ir.get("instrs", 0)))
    if plan:
        lines.append("plan: %.0f pps estimated throughput" %
                     plan.get("throughput_pps", 0.0))
        rows = []
        for agg in plan.get("aggregates", []):
            rows.append([agg["name"], agg["target"],
                         "%d" % agg.get("me_count", 0),
                         "%.2f" % agg.get("cost", 0.0),
                         "%d" % agg.get("code_size_estimate", 0),
                         "%d" % len(agg.get("ppfs", []))])
        _table(lines, ["aggregate", "target", "MEs", "cost",
                       "est.size", "ppfs"], rows)
    images = report.get("images") or {}
    if images:
        lines.append("images:")
        rows = []
        for name, img in sorted(images.items()):
            rows.append([name, "%d" % img.get("code_size", 0),
                         "%d" % img.get("n_insns", 0),
                         "%d" % img.get("lm_stack_words", 0),
                         "%d" % img.get("sram_stack_words", 0)])
        _table(lines, ["image", "code_words", "insns", "lm_stack",
                       "sram_stack"], rows)
    opt = report.get("opt") or {}
    summary_bits = []
    if opt.get("pac"):
        p = opt["pac"]
        summary_bits.append("pac: %d loads->%d wide, %d stores->%d wide" % (
            p["combined_loads"], p["wide_loads"],
            p["combined_stores"], p["wide_stores"]))
    if opt.get("soar"):
        s = opt["soar"]
        summary_bits.append("soar: %d/%d accesses resolved (%.0f%%)" % (
            s["resolved_accesses"], s["total_accesses"],
            100 * s["resolution_rate"]))
    if opt.get("phr"):
        ph = opt["phr"]
        summary_bits.append("phr: %d encaps elided, %d meta localized, "
                            "%d syncs" % (ph["elided_encaps"],
                                          len(ph["localized_meta_fields"]),
                                          ph["syncs_inserted"]))
    if opt.get("swc"):
        sw = opt["swc"]
        summary_bits.append("swc: %d cached, %d rejected, %d loads "
                            "rewritten" % (len(sw["cached"]),
                                           len(sw["rejected"]),
                                           sw["rewritten_loads"]))
    for bit in summary_bits:
        lines.append("  " + bit)
    lines.append("")

    decisions = report.get("decisions") or []
    if pass_filter:
        decisions = [d for d in decisions if d.get("pass") == pass_filter]
    counts = report.get("decision_counts") or {}
    lines.append("decisions: %d recorded across %d passes%s" % (
        len(decisions), len(counts),
        "  (filtered to pass=%s)" % pass_filter if pass_filter else ""))
    by_pass: "OrderedDict[str, List[dict]]" = OrderedDict()
    for d in decisions:
        by_pass.setdefault(d.get("pass", "?"), []).append(d)
    for pass_name, ds in by_pass.items():
        lines.append("")
        lines.append("[%s]" % pass_name)
        for d in ds:
            line = "  %-18s %s" % (d.get("verdict", "?"),
                                   d.get("subject", "?"))
            if d.get("loc"):
                line += "  @%s" % d["loc"]
            lines.append(line)
            if d.get("reason"):
                lines.append("      why: %s" % d["reason"])
            if d.get("evidence"):
                lines.append("      %s" % _fmt_evidence(d["evidence"]))
    if not decisions:
        lines.append("  (none -- was the report written with "
                     "REPRO_OBS_LEDGER=1 or python -m repro.obs.ledger?)")
    return "\n".join(lines)


def explain_main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report explain",
        description="Render a compile_report.json (see repro.obs.ledger) "
                    "as a human-readable decision log.")
    ap.add_argument("path", help="compile_report.json to explain")
    ap.add_argument("--pass", dest="pass_filter", default=None,
                    metavar="PASS",
                    help="show only decisions of one pass (e.g. swc)")
    args = ap.parse_args(argv)
    if not os.path.exists(args.path):
        print("error: no compile report at %s (write one with "
              "python -m repro.obs.ledger -o %s)" % (args.path, args.path),
              file=sys.stderr)
        return 1
    try:
        with open(args.path) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read compile report from %s: %s"
              % (args.path, exc), file=sys.stderr)
        return 1
    if not isinstance(report, dict) or report.get("kind") != "compile_report":
        print("error: %s is not a compile report (kind=%r)"
              % (args.path, report.get("kind")
                 if isinstance(report, dict) else type(report).__name__),
              file=sys.stderr)
        return 1
    print(render_explain(report, args.pass_filter))
    return 0


# -- timeline: render a timeseries JSONL dump ----------------------------------------


def render_timeline(header: dict, windows: List[dict], k: int = 2) -> str:
    """Per-window rate/latency/drop table with update markers, plus the
    update-impact section. Deterministic: a pure function of the file."""
    from repro.obs.timeseries import update_impact, window_drops

    lines: List[str] = []
    head = "timeline"
    for key in ("app", "level", "n_mes"):
        if header.get(key) is not None:
            head += "  %s=%s" % (key, header[key])
    lines.append(head)
    if header.get("churn"):
        lines.append("churn: " + "  ".join(str(c) for c in header["churn"]))
    lines.append("windows: %d x %g cycles (finished at %g)"
                 % (len(windows), header.get("window_cycles", 0),
                    header.get("finished_at") or 0))
    lat = header.get("latency_total") or {}
    if lat.get("count"):
        lines.append("latency overall (cycles): n=%d  p50=%g  p95=%g  "
                     "p99=%g  mean=%g  max=%g"
                     % (lat["count"], lat.get("p50", 0), lat.get("p95", 0),
                        lat.get("p99", 0), lat.get("mean", 0),
                        lat.get("max", 0)))
    lines.append("")

    rows = []
    for w in windows:
        wl = w.get("latency") or {}
        events = w.get("events") or []
        marks = ",".join(str(e.get("churn") or e.get("kind", "?"))
                         for e in events)
        if w.get("partial"):
            marks = (marks + " " if marks else "") + "(partial)"
        rows.append([
            "%d" % w.get("window", 0),
            "%.0f" % w.get("t_start", 0.0),
            "%.4f" % w.get("rate_gbps", 0.0),
            "%g" % wl.get("p50", 0), "%g" % wl.get("p95", 0),
            "%g" % wl.get("p99", 0), "%g" % window_drops(w),
            ("* " + marks) if events else marks,
        ])
    _table(lines, ["win", "t_start", "gbps", "p50", "p95", "p99",
                   "drops", "events"], rows)

    impact = update_impact(windows, k=k)
    if impact:
        lines.append("")
        lines.append("Update impact (mean over %d windows before/after):" % k)
        rows = []
        for r in impact:
            b, d, a = r["before"], r["during"], r["after"]
            rows.append([
                "%d" % r["window"],
                str(r.get("churn") or r.get("kind", "?")),
                str(r.get("target", "")),
                "%g" % b["p99"], "%g" % d["p99"], "%g" % a["p99"],
                "%+g" % r["delta_p99"],
                "%+.4f" % r["delta_rate_gbps"],
                "%+g" % r["delta_drops"],
            ])
        _table(lines, ["win", "update", "target", "p99.before", "p99.during",
                       "p99.after", "d(p99)", "d(gbps)", "d(drops)"], rows)
    return "\n".join(lines)


def timeline_main(argv) -> int:
    from repro.obs.timeseries import load_timeseries

    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report timeline",
        description="Render a timeseries JSONL dump (written by "
                    "repro.obs.timeseries / python -m repro.serve) as a "
                    "per-window table with update-impact analysis.")
    ap.add_argument("path", help="timeline JSONL file")
    ap.add_argument("-k", type=int, default=2,
                    help="impact windows before/after each update "
                         "(default: %(default)s)")
    args = ap.parse_args(argv)
    if not os.path.exists(args.path):
        print("error: no timeline file at %s (write one with "
              "python -m repro.serve --timeline %s)" % (args.path, args.path),
              file=sys.stderr)
        return 1
    try:
        header, windows = load_timeseries(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read timeline from %s: %s" % (args.path, exc),
              file=sys.stderr)
        return 1
    if not windows:
        print("error: %s holds no window records (is it a timeseries "
              "dump?)" % args.path, file=sys.stderr)
        return 1
    print(render_timeline(header, windows, k=args.k))
    return 0


# -- bottleneck: render a BENCH_occupancy.json ---------------------------------------


def render_bottleneck(bench: dict, app: Optional[str] = None,
                      level: Optional[str] = None,
                      mes: Optional[int] = None) -> str:
    """Attribution tables + verdicts from a BENCH_occupancy.json dict.
    Deterministic: a pure function of the file and the filters."""
    from repro.obs.profile import CATEGORIES
    from repro.options import LEVEL_ORDER

    cells = [c for c in (bench.get("cells") or {}).values()
             if (app is None or c.get("app") == app)
             and (level is None or c.get("level") == level)
             and (mes is None or c.get("n_mes") == mes)]
    if not cells:
        return "(no matching occupancy cells)"

    def level_rank(lv: str) -> Tuple[int, str]:
        try:
            return (LEVEL_ORDER.index(lv), lv)
        except ValueError:
            return (len(LEVEL_ORDER), lv)

    groups: "OrderedDict[Tuple, List[dict]]" = OrderedDict()
    for c in sorted(cells, key=lambda c: (c.get("app", ""),
                                          level_rank(c.get("level", "")),
                                          c.get("n_mes", 0))):
        groups.setdefault((c.get("app", "?"), c.get("level", "?")),
                          []).append(c)

    lines: List[str] = []
    for (capp, clevel), group in groups.items():
        lines.append("%s / %s -- stall-cycle attribution (%% of thread "
                     "cycles):" % (capp, clevel))
        rows = []
        for c in group:
            shares = c.get("shares") or {}
            rows.append(["%d" % c.get("n_mes", 0),
                         "%.2f" % c.get("rate_gbps", 0.0)]
                        + ["%.1f" % (100 * shares.get(cat, 0.0))
                           for cat in CATEGORIES]
                        + [str((c.get("verdict") or {}).get("kind", "?"))])
        _table(lines, ["MEs", "gbps"] + list(CATEGORIES) + ["verdict"],
               rows)
        for c in group:
            text = (c.get("verdict") or {}).get("text")
            if text:
                lines.append("  " + text)
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def bottleneck_main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report bottleneck",
        description="Render a BENCH_occupancy.json (written by "
                    "python -m repro.sweep --profile) as per-(app, "
                    "level) attribution tables with bottleneck "
                    "verdicts.")
    ap.add_argument("path", nargs="?", default="BENCH_occupancy.json",
                    help="occupancy bench file (default: %(default)s)")
    ap.add_argument("--app", default=None,
                    help="restrict to one app (e.g. mpls)")
    ap.add_argument("--level", default=None,
                    help="restrict to one optimization level (e.g. SWC)")
    ap.add_argument("--mes", type=int, default=None,
                    help="restrict to one ME count")
    args = ap.parse_args(argv)
    if not os.path.exists(args.path):
        print("error: no occupancy file at %s (write one with "
              "python -m repro.sweep --profile)" % args.path,
              file=sys.stderr)
        return 1
    try:
        with open(args.path) as fh:
            bench = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read occupancy bench from %s: %s"
              % (args.path, exc), file=sys.stderr)
        return 1
    if not isinstance(bench, dict) or bench.get("kind") != "bench_occupancy":
        print("error: %s is not an occupancy bench (kind=%r, expected "
              "bench_occupancy)"
              % (args.path, bench.get("kind")
                 if isinstance(bench, dict) else type(bench).__name__),
              file=sys.stderr)
        return 1
    print(render_bottleneck(bench, app=args.app, level=args.level,
                            mes=args.mes))
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "timeline":
        return timeline_main(argv[1:])
    if argv and argv[0] == "bottleneck":
        return bottleneck_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a metrics JSONL dump as text.")
    ap.add_argument("path", nargs="?",
                    default=os.environ.get("REPRO_OBS_JSONL",
                                           "benchmarks/results/metrics.jsonl"),
                    help="metrics JSONL file (default: %(default)s)")
    ap.add_argument("--only", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="restrict to records whose label KEY equals VALUE "
                         "(repeatable), e.g. --only app=l3switch")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as machine-readable JSON instead "
                         "of rendered tables")
    args = ap.parse_args(argv)
    only = {}
    for item in args.only:
        if "=" not in item:
            ap.error("--only expects KEY=VALUE, got %r" % item)
        k, _, v = item.partition("=")
        only[k] = v
    if not os.path.exists(args.path):
        print("error: no metrics file at %s (run a benchmark with "
              "REPRO_OBS=1, or pass metrics_jsonl= to run_on_simulator)"
              % args.path, file=sys.stderr)
        return 1
    try:
        records = load_records(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read metrics from %s: %s" % (args.path, exc),
              file=sys.stderr)
        return 1
    if not records:
        print("error: metrics file %s is empty (nothing was recorded -- "
              "was the registry enabled?)" % args.path, file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(render_json(records, only or None),
                         indent=2, sort_keys=True))
    else:
        print(render(records, only or None))
    return 0


if __name__ == "__main__":
    sys.exit(main())
