"""Render a metrics JSONL dump as a human-readable text report.

Usage::

    python -m repro.obs.report [metrics.jsonl] [--only key=value ...]

The input is whatever :meth:`repro.obs.MetricsRegistry.dump_jsonl`
wrote (benchmarks write ``benchmarks/results/metrics.jsonl``). Records
are grouped into *scopes* by their non-structural labels (e.g. the
``app``/``level`` a benchmark tagged), then rendered section by
section: compile stage timings, IR size per stage, opt-pass counters,
ring statistics, per-ME utilization, memory-channel load, Rx/Tx
accounting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

#: Labels that select a row *within* a section rather than a scope.
STRUCTURAL_LABELS = {"stage", "ring", "me", "channel", "cause", "kind",
                     "engine", "passname", "aggregate", "stat", "src"}

#: Render compiler stages in pipeline order, not alphabetically.
STAGE_ORDER = ["frontend", "lower", "initial", "profile", "scalar",
               "aggregate", "pac", "soar", "phr", "swc", "verify",
               "codegen"]


def load_records(path: str) -> List[dict]:
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _scope_key(rec: dict) -> Tuple:
    labels = rec.get("labels") or {}
    return tuple(sorted((k, v) for k, v in labels.items()
                        if k not in STRUCTURAL_LABELS))


def _slabel(rec: dict, key: str, default="") -> str:
    return str((rec.get("labels") or {}).get(key, default))


def _stage_order(recs: List[dict]):
    """Sort key for stage names: pipeline order for known stages, then
    unknown stages in the order they first appear in the records (never
    silently alphabetized into the middle of the pipeline)."""
    first_seen: Dict[str, int] = {}
    for r in recs:
        stage = (r.get("labels") or {}).get("stage")
        if stage is not None and stage not in STAGE_ORDER:
            first_seen.setdefault(str(stage), len(first_seen))

    def key(stage: str) -> Tuple[int, int, str]:
        try:
            return (0, STAGE_ORDER.index(stage), stage)
        except ValueError:
            return (1, first_seen.get(stage, len(first_seen)), stage)

    return key


def _table(lines: List[str], header: List[str], rows: List[List[str]],
           indent: str = "  ") -> None:
    if not rows:
        return
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(header)]
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines.append(indent + fmt % tuple(header))
    for row in rows:
        lines.append(indent + fmt % tuple(row))


def _pick(recs: List[dict], rtype: str, name: str) -> List[dict]:
    return [r for r in recs if r["type"] == rtype and r["name"] == name]


def _gauge_by(recs: List[dict], name: str, label: str) -> Dict[str, float]:
    return {_slabel(r, label): r["value"] for r in _pick(recs, "gauge", name)}


def _render_scope(recs: List[dict], lines: List[str]) -> None:
    stage_key = _stage_order(recs)

    # -- compile stage timings ---------------------------------------------------
    timers = _pick(recs, "timer", "compile.stage")
    if timers:
        lines.append("Compile stages (wall time):")
        rows = []
        total = 0.0
        for r in sorted(timers, key=lambda r: stage_key(_slabel(r, "stage"))):
            total += r["total_s"]
            rows.append([_slabel(r, "stage"), str(r["count"]),
                         "%.1f" % (r["total_s"] * 1e3)])
        rows.append(["TOTAL", "", "%.1f" % (total * 1e3)])
        _table(lines, ["stage", "calls", "ms"], rows)
        lines.append("")

    # -- IR size per stage -------------------------------------------------------
    fns = _gauge_by(recs, "compile.ir.functions", "stage")
    blocks = _gauge_by(recs, "compile.ir.blocks", "stage")
    instrs = _gauge_by(recs, "compile.ir.instrs", "stage")
    if instrs:
        lines.append("IR size after each stage:")
        rows = []
        prev = None
        for stage in sorted(instrs, key=stage_key):
            n = instrs[stage]
            delta = "" if prev is None else "%+d" % (n - prev)
            prev = n
            rows.append([stage, "%d" % fns.get(stage, 0),
                         "%d" % blocks.get(stage, 0), "%d" % n, delta])
        _table(lines, ["stage", "functions", "blocks", "instrs", "delta"], rows)
        lines.append("")

    # -- opt-pass counters -------------------------------------------------------
    opt = [r for r in recs if r["name"].startswith("opt.")
           and r["type"] in ("counter", "gauge")]
    if opt:
        lines.append("Optimization passes:")
        rows = []
        for r in sorted(opt, key=lambda r: (r["name"], _slabel(r, "passname"))):
            name = r["name"]
            extra = _slabel(r, "passname")
            if extra:
                name += "{%s}" % extra
            rows.append([name, "%g" % r["value"]])
        _table(lines, ["counter", "value"], rows)
        hist = _pick(recs, "histogram", "opt.scalar.iterations")
        for h in hist:
            lines.append("  scalar fixpoint: %d function runs, "
                         "%.1f iterations avg (max %g)"
                         % (h["count"], h["mean"], h["max"] or 0))
        lines.append("")

    # -- hot Baker source lines (functional-profiler attribution) ----------------
    hot = _pick(recs, "counter", "profile.line_instrs")
    if hot:
        hot.sort(key=lambda r: (-r["value"], _slabel(r, "src")))
        total_attr = sum(r["value"] for r in hot)
        lines.append("Hot Baker source lines (interpreted IR instrs, top %d):"
                     % min(10, len(hot)))
        rows = []
        for rank, r in enumerate(hot[:10], 1):
            share = r["value"] / total_attr if total_attr else 0.0
            rows.append(["%d" % rank, _slabel(r, "src"),
                         "%d" % r["value"], "%.1f%%" % (share * 100)])
        _table(lines, ["#", "source line", "instrs", "share"], rows)
        lines.append("")

    # -- ring statistics ---------------------------------------------------------
    caps = _gauge_by(recs, "sim.ring.capacity", "ring")
    if caps:
        depth = _gauge_by(recs, "sim.ring.depth", "ring")
        maxd = _gauge_by(recs, "sim.ring.max_depth", "ring")
        puts = _gauge_by(recs, "sim.ring.puts", "ring")
        gets = _gauge_by(recs, "sim.ring.gets", "ring")
        drops = _gauge_by(recs, "sim.ring.drops", "ring")
        empty = _gauge_by(recs, "sim.ring.empty_gets", "ring")
        occ = {_slabel(r, "ring"): r["summary"]
               for r in _pick(recs, "series", "sim.ring_depth")}
        lines.append("Rings (occupancy / drops):")
        rows = []
        for ring in sorted(caps):
            s = occ.get(ring)
            rows.append([
                ring, "%d" % caps[ring], "%d" % depth.get(ring, 0),
                "%d" % maxd.get(ring, 0), "%d" % puts.get(ring, 0),
                "%d" % gets.get(ring, 0), "%d" % drops.get(ring, 0),
                "%d" % empty.get(ring, 0),
                "%.1f" % s["mean"] if s else "-",
            ])
        _table(lines, ["ring", "cap", "depth", "max", "puts", "gets",
                       "drops", "empty_gets", "occ.mean"], rows)
        lines.append("")

    # -- per-ME utilization ------------------------------------------------------
    util = _gauge_by(recs, "sim.me.utilization", "me")
    if util:
        instrs_g = _gauge_by(recs, "sim.me.executed_instrs", "me")
        lines.append("Microengines:")
        rows = []
        for me in sorted(util, key=lambda m: int(m)):
            rows.append([me, "%.1f%%" % (util[me] * 100),
                         "%d" % instrs_g.get(me, 0)])
        _table(lines, ["me", "busy", "instrs"], rows)
        lines.append("")

    # -- memory channels ---------------------------------------------------------
    busy = _gauge_by(recs, "sim.mem.busy_cycles", "channel")
    if busy:
        mutil = _gauge_by(recs, "sim.mem.utilization", "channel")
        lines.append("Memory channels:")
        rows = []
        for ch in sorted(busy):
            u = mutil.get(ch)
            rows.append([ch, "%.0f" % busy[ch],
                         "%.1f%%" % (u * 100) if u is not None else "-"])
        _table(lines, ["channel", "busy_cycles", "util"], rows)
        lines.append("")

    # -- Rx/Tx accounting --------------------------------------------------------
    rx_offered = _pick(recs, "gauge", "sim.rx.offered")
    if rx_offered:
        drops = {(_slabel(r, "cause")): r["value"]
                 for r in _pick(recs, "gauge", "sim.rx.dropped")}
        tx_pkts = _pick(recs, "gauge", "sim.tx.packets")
        tx_bytes = _pick(recs, "gauge", "sim.tx.bytes")
        leaks = {(_slabel(r, "engine"), _slabel(r, "kind")): r["value"]
                 for r in _pick(recs, "gauge", "sim.leaks")}
        lines.append("Rx/Tx:")
        lines.append("  rx offered=%d  dropped[freelist_empty]=%d  "
                     "dropped[ring_full]=%d"
                     % (rx_offered[0]["value"],
                        drops.get("freelist_empty", 0),
                        drops.get("ring_full", 0)))
        if tx_pkts:
            lines.append("  tx packets=%d  bytes=%d"
                         % (tx_pkts[0]["value"],
                            tx_bytes[0]["value"] if tx_bytes else 0))
        if leaks:
            lines.append("  recycle leaks: "
                         + "  ".join("%s.%s=%d" % (e, k, v)
                                     for (e, k), v in sorted(leaks.items())))
        lines.append("")

    # -- per-packet latency (PacketTracer summary) -------------------------------
    lat = {_slabel(r, "stat"): r["value"]
           for r in _pick(recs, "gauge", "sim.pkt.latency_cycles")}
    if lat:
        lines.append("Packet latency (Rx arrival -> Tx, ME cycles):")
        lines.append("  n=%d  p50=%g  p95=%g  p99=%g  mean=%g  "
                     "min=%g  max=%g"
                     % (lat.get("count", 0), lat.get("p50", 0),
                        lat.get("p95", 0), lat.get("p99", 0),
                        lat.get("mean", 0), lat.get("min", 0),
                        lat.get("max", 0)))
        traced = _pick(recs, "gauge", "sim.pkt.traced")
        untraced = _pick(recs, "gauge", "sim.pkt.untraced")
        if traced:
            lines.append("  traced packets=%d  untraced=%d"
                         % (traced[0]["value"],
                            untraced[0]["value"] if untraced else 0))
        pkt_drops = {_slabel(r, "cause"): r["value"]
                     for r in _pick(recs, "gauge", "sim.pkt.drops")}
        if pkt_drops:
            lines.append("  drops: " + "  ".join(
                "%s=%d" % kv for kv in sorted(pkt_drops.items())))
        lines.append("")

    # -- anything else (loader layout, run summary gauges, ...) ------------------
    known_prefixes = ("compile.", "opt.", "sim.ring", "sim.me",
                      "sim.mem.", "sim.rx.", "sim.tx.", "sim.leaks",
                      "sim.pkt.", "profile.line_instrs")
    other = [r for r in recs
             if not r["name"].startswith(known_prefixes)
             and r["type"] in ("counter", "gauge", "timer")]
    if other:
        lines.append("Other:")
        rows = []
        for r in sorted(other, key=lambda r: r["name"]):
            labels = {k: v for k, v in (r.get("labels") or {}).items()
                      if k in STRUCTURAL_LABELS}
            name = r["name"]
            if labels:
                name += "{%s}" % ",".join(
                    "%s=%s" % kv for kv in sorted(labels.items()))
            if r["type"] == "timer":
                val = "%.1f ms / %d calls" % (r["total_s"] * 1e3, r["count"])
            else:
                val = "%g" % r["value"]
            rows.append([name, val])
        _table(lines, ["metric", "value"], rows)
        lines.append("")


def render(records: List[dict],
           only: Optional[Dict[str, str]] = None) -> str:
    scopes: "OrderedDict[Tuple, List[dict]]" = OrderedDict()
    for rec in records:
        if only:
            labels = rec.get("labels") or {}
            if any(str(labels.get(k)) != v for k, v in only.items()):
                continue
        scopes.setdefault(_scope_key(rec), []).append(rec)

    lines: List[str] = []
    for key in sorted(scopes):
        header = " ".join("%s=%s" % kv for kv in key) or "(unlabelled)"
        lines.append("=" * 72)
        lines.append(header)
        lines.append("=" * 72)
        _render_scope(scopes[key], lines)
    if not lines:
        lines.append("(no matching records)")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a metrics JSONL dump as text.")
    ap.add_argument("path", nargs="?",
                    default=os.environ.get("REPRO_OBS_JSONL",
                                           "benchmarks/results/metrics.jsonl"),
                    help="metrics JSONL file (default: %(default)s)")
    ap.add_argument("--only", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="restrict to records whose label KEY equals VALUE "
                         "(repeatable), e.g. --only app=l3switch")
    args = ap.parse_args(argv)
    only = {}
    for item in args.only:
        if "=" not in item:
            ap.error("--only expects KEY=VALUE, got %r" % item)
        k, _, v = item.partition("=")
        only[k] = v
    if not os.path.exists(args.path):
        print("error: no metrics file at %s (run a benchmark with "
              "REPRO_OBS=1, or pass metrics_jsonl= to run_on_simulator)"
              % args.path, file=sys.stderr)
        return 1
    try:
        records = load_records(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print("error: cannot read metrics from %s: %s" % (args.path, exc),
              file=sys.stderr)
        return 1
    if not records:
        print("error: metrics file %s is empty (nothing was recorded -- "
              "was the registry enabled?)" % args.path, file=sys.stderr)
        return 1
    print(render(records, only or None))
    return 0


if __name__ == "__main__":
    sys.exit(main())
