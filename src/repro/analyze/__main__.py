"""CLI: ``python -m repro.analyze <app> [-O LEVEL] [--pass NAME ...]``.

Compiles the app with the decision ledger enabled, runs the requested
analysis passes (default: all), prints the deterministic JSON report
(or writes it with ``-o``), and exits 2 when any pass reported an
error-severity finding.
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.core import (
    EXIT_FINDINGS,
    registered_passes,
    report_text,
    run_analysis,
    write_report,
)
from repro.options import LEVEL_ORDER

#: accept the conventional -O spellings alongside the paper's names.
_LEVEL_ALIASES = {
    "O0": "BASE", "0": "BASE",
    "1": "O1", "2": "O2",
    "3": "SWC", "O3": "SWC", "MAX": "SWC",
}


def resolve_level(text: str) -> str:
    raw = text.upper().lstrip("+-")
    if raw in LEVEL_ORDER:
        return raw
    if raw in _LEVEL_ALIASES:
        return _LEVEL_ALIASES[raw]
    raise SystemExit(
        "unknown optimization level %r (have: %s, plus -O0/-O3 aliases)"
        % (text, ", ".join(LEVEL_ORDER)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Analysis / translation validation of compiled ME images")
    parser.add_argument("app", nargs="?",
                        help="application name (l3switch/firewall/mpls)")
    parser.add_argument("-O", "--level", default="SWC",
                        help="optimization level (BASE..SWC; -O3 = SWC)")
    parser.add_argument("--pass", dest="passes", action="append",
                        metavar="NAME",
                        help="run only this pass (+ dependencies); repeatable")
    parser.add_argument("--list", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write the JSON report here instead of stdout")
    parser.add_argument("--packets", type=int, default=200,
                        help="profiling-trace packets (default 200)")
    parser.add_argument("--seed", type=int, default=5,
                        help="profiling-trace seed (default 5)")
    parser.add_argument("--validate-packets", type=int, default=64,
                        help="roots replayed per image by the validate "
                             "pass; 0 = the whole trace (default 64)")
    args = parser.parse_args(argv)

    if args.list:
        for p in registered_passes():
            deps = " (requires %s)" % ", ".join(p.requires) if p.requires \
                else ""
            print("%-10s %s%s" % (p.name, p.doc, deps))
        return 0

    if not args.app:
        parser.error("an application name is required (or use --list)")
    validate_packets = args.validate_packets if args.validate_packets > 0 \
        else None
    report = run_analysis(
        args.app, resolve_level(args.level), passes=args.passes,
        packets=args.packets, seed=args.seed,
        validate_packets=validate_packets)
    if args.output:
        write_report(report, args.output)
        print("wrote %s (%s, %d error findings)" % (
            args.output, "ok" if report["ok"] else "NOT OK",
            report["errors_total"]))
    else:
        sys.stdout.write(report_text(report))
    return 0 if report["ok"] else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
