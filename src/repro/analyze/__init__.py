"""Translation-validating analysis passes over compiled ME images.

``repro.analyze`` is the compiler's independent checker: a small
framework of composable, dependency-resolved analysis passes that run
over the :class:`~repro.cg.assemble.MEImage` artifacts of one compile
and emit a deterministic, diffable JSON report (the same conventions as
:mod:`repro.obs.ledger`).

The stock passes:

* ``images``   -- per-image inventory (the substrate every other pass
  declares a dependency on);
* ``layout``   -- packet-field offsets/widths actually used by each
  image, cross-checked against SOAR's resolved offsets in the decision
  ledger;
* ``bounds``   -- per-dispatch-path worst-case cycle bounds over the
  predecoded run graph;
* ``budget``   -- control-store words and stack depth re-derived from
  the final instruction list and compared against the
  ``record_budget_fit`` / ``record_stack_fit`` ledger claims;
* ``validate`` -- translation validation: the image's packet effects
  (header writes, drops, ring puts) along each dispatch path are
  replayed on an isolated single-image harness and compared against an
  abstract interpretation of the Baker source's IR.

Usage::

    python -m repro.analyze mpls -O3            # all passes, one report
    python -m repro.analyze l3switch --pass validate --pass budget

Exit code 2 means at least one pass reported an error-severity finding
(a divergence, a budget lie, a layout mismatch); 0 means clean.
"""

from repro.analyze.core import (  # noqa: F401
    AnalysisContext,
    AnalysisError,
    AnalysisPass,
    EXIT_FINDINGS,
    PASSES,
    registered_passes,
    resolve_passes,
    run_analysis,
    write_report,
)
