"""``validate`` pass: translation validation of compiled images.

For every ME image: capture the reference effect multiset per trace
packet (:mod:`repro.analyze.capture`, running the *unoptimized* IR) and
replay the same packets through the compiled image on an isolated chip
(:mod:`repro.analyze.harness`).  A root diverges when the two effect
multisets differ -- a missing/extra/altered put or drop is exactly an
observable packet-semantics change introduced between the checked Baker
program and the final ME code.

Every divergence is an ``error`` finding carrying the root index, the
injected packet, and the symmetric difference of the effect multisets
(payloads rendered as length + sha256 prefix to keep reports diffable).
The report also carries per-image totals so a clean run still documents
how much behavior was checked.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, List

from repro.analyze.capture import (
    capture_reference,
    comparison_meta_words,
    localized_meta_word_indices,
)
from repro.analyze.core import AnalysisContext, AnalysisPass, finding, register
from repro.analyze.harness import ImageHarness

def _render_effect(effect: tuple) -> str:
    if effect[0] == "drop":
        return "drop"
    _, channel, payload, meta = effect
    return "put %s len=%d sha=%s meta=%s" % (
        channel, len(payload),
        hashlib.sha256(payload).hexdigest()[:12],
        ",".join(str(v) for v in meta))


def _diff_multisets(ref: List[tuple], got: List[tuple]):
    ref_c, got_c = Counter(ref), Counter(got)
    missing = sorted(_render_effect(e) for e in (ref_c - got_c).elements())
    extra = sorted(_render_effect(e) for e in (got_c - ref_c).elements())
    return missing, extra


class ValidatePass(AnalysisPass):
    name = "validate"
    requires = ("images",)
    doc = "translation validation: image effects vs. reference IR"

    def run(self, ctx: AnalysisContext):
        findings: List[Dict[str, object]] = []
        images_out: Dict[str, object] = {}
        max_roots = ctx.validate_packets
        cmp_words = comparison_meta_words(
            ctx.result.mod.meta_words, localized_meta_word_indices(ctx.result))
        for agg in sorted(ctx.result.images):
            image = ctx.result.images[agg]
            roots = capture_reference(ctx.result, ctx.trace, agg,
                                      max_roots=max_roots)
            harness = ImageHarness(ctx.result, agg, cmp_words)
            n_events = 0
            n_divergent = 0
            by_kind: Dict[str, int] = {}
            for root in roots:
                got = harness.replay_root(root)
                n_events += len(root.effects)
                for e in root.effects:
                    key = e[0] if e[0] == "drop" else "put:%s" % e[1]
                    by_kind[key] = by_kind.get(key, 0) + 1
                if Counter(got) == Counter(root.effects):
                    continue
                n_divergent += 1
                missing, extra = _diff_multisets(root.effects, got)
                findings.append(finding(
                    "error", self.name,
                    "%s/root%d" % (image.name, root.index),
                    "compiled image effects diverge from reference IR",
                    channel=root.channel,
                    payload_len=len(root.payload),
                    payload_sha=hashlib.sha256(root.payload).hexdigest()[:12],
                    rx_port=root.rx_port,
                    missing=missing, extra=extra))
            images_out[agg] = {
                "roots_checked": len(roots),
                "effects_checked": n_events,
                "effects_by_kind": dict(sorted(by_kind.items())),
                "divergent_roots": n_divergent,
                "replay_timeouts": harness.timeouts,
                "meta_words_compared": list(cmp_words),
            }
            if not roots:
                findings.append(finding(
                    "warning", self.name, image.name,
                    "no reference roots reach this image (rx not consumed "
                    "by its aggregate); nothing validated"))
        return {"findings": findings, "images": images_out}


register(ValidatePass())
