"""``bounds`` pass: per-dispatch-path worst-case cycle bounds.

For every dispatch entry of every image (the ``inputs`` ring/entry pairs
plus the boot entry), computes the longest *acyclic* path through the
final instruction list, charging each instruction its issue-cycle cost
(:attr:`~repro.cg.isa.Insn.cycles`) plus the one-cycle abort penalty on
taken branches -- the same accounting the simulator's dispatch cores
use.  Calls (``bal``) are spliced: callee body (terminated by ``rtn``)
plus the continuation after the call.

Loops are truncated at their back edge (contributing zero), so the bound
covers the acyclic core of each path; entries whose subgraph contains a
loop are flagged ``cyclic`` and their loop headers listed.  Memory-wait
time is deliberately excluded: it depends on contention and thread
interleaving, so the pass reports the *memory reference count* along the
worst path instead, which together with the cycle bound is the paper's
own headroom model (compute cycles vs. references per packet).

Findings: an unresolved branch/call target in a final image is an
``error`` -- assembly must have resolved every label.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.analyze.core import AnalysisContext, AnalysisPass, finding, register

#: instruction kinds that issue one memory/ring reference.
_MEMREF_KINDS = frozenset(
    ("mem", "ring_get", "ring_put", "tas", "release"))


def _longest_from(insns, start: int):
    """``(cycles, mem_refs, loop_headers, unresolved)`` for the longest
    acyclic path from ``start``.  Back edges contribute zero and record
    the loop header; ties between branch arms break toward more memory
    references (the more pessimistic profile)."""
    n = len(insns)
    memo: Dict[int, tuple] = {}
    color: Dict[int, int] = {}  # 1 = on the DFS stack, 2 = done
    loop_headers: List[int] = []
    unresolved: List[int] = []

    def go(idx: int):
        if idx >= n:
            return (0, 0)
        if color.get(idx) == 1:
            if idx not in loop_headers:
                loop_headers.append(idx)
            return (0, 0)
        if idx in memo:
            return memo[idx]
        color[idx] = 1
        i = insns[idx]
        kind = i.kind
        c = i.cycles
        m = 1 if kind in _MEMREF_KINDS else 0
        if kind in ("halt", "rtn"):
            val = (c, m)
        elif kind == "br":
            if i.resolved is None:
                unresolved.append(idx)
                val = (c, m)
            elif i.cond == "always":
                tc, tm = go(i.resolved)
                val = (c + 1 + tc, m + tm)
            else:
                tc, tm = go(i.resolved)
                fc, fm = go(idx + 1)
                val = max((c + 1 + tc, m + tm), (c + fc, m + fm))
        elif kind == "bal":
            if i.resolved is None:
                unresolved.append(idx)
                val = (c, m)
            else:
                bc, bm = go(i.resolved)   # callee body, up to its rtn
                rc, rm = go(idx + 1)      # continuation after return
                val = (c + 1 + bc + rc, m + bm + rm)
        else:
            fc, fm = go(idx + 1)
            val = (c + fc, m + fm)
        color[idx] = 2
        memo[idx] = val
        return val

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 1000))
    try:
        cycles, mem_refs = go(start)
    finally:
        sys.setrecursionlimit(old_limit)
    return cycles, mem_refs, sorted(loop_headers), sorted(set(unresolved))


class BoundsPass(AnalysisPass):
    name = "bounds"
    requires = ("images",)
    doc = "worst-case cycle / memory-reference bounds per dispatch path"

    def run(self, ctx: AnalysisContext):
        findings = []
        images_out: Dict[str, object] = {}
        for agg in sorted(ctx.result.images):
            image = ctx.result.images[agg]
            entries = [("__boot", image.entry)]
            for ring_sym, entry_label in image.inputs:
                idx = image.label_index.get(entry_label)
                if idx is not None:
                    entries.append((ring_sym, idx))
            paths = []
            for entry_name, start in entries:
                cycles, mem_refs, headers, unresolved = _longest_from(
                    image.insns, start)
                for idx in unresolved:
                    findings.append(finding(
                        "error", self.name,
                        "%s+%d" % (image.name, idx),
                        "unresolved %s target in assembled image"
                        % image.insns[idx].kind,
                        entry=entry_name))
                paths.append({
                    "entry": entry_name,
                    "start": start,
                    "cycles_bound": cycles,
                    "mem_refs_bound": mem_refs,
                    "cyclic": bool(headers),
                    "loop_headers": headers,
                })
            images_out[agg] = {"paths": paths}
        return {"findings": findings, "images": images_out}


register(BoundsPass())
