"""Pass framework for :mod:`repro.analyze`.

An analysis pass is a named object with a ``requires`` tuple and a
``run(ctx)`` method returning a JSON-serializable payload.  Passes are
registered in :data:`PASSES`; :func:`resolve_passes` expands a requested
subset to its dependency closure in a deterministic topological order
(dependencies first, registration order as the tie-breaker), so a report
that ran ``--pass validate`` is byte-comparable with the ``validate``
section of a full report.

Findings are the analyzer's currency: every pass returns a ``findings``
list of ``{severity, pass, subject, detail}`` dicts.  ``error``-severity
findings (a divergence, a budget lie, a layout mismatch) make the run
"not ok" and turn into exit code :data:`EXIT_FINDINGS` at the CLI.

Reports follow the :mod:`repro.obs.ledger` conventions -- a ``kind`` /
``version`` header, normalized scalar values, and ``sort_keys`` JSON
with a trailing newline -- so they diff cleanly across compiler
versions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import ledger as obs_ledger

#: CLI exit status when at least one error-severity finding was reported.
EXIT_FINDINGS = 2

REPORT_KIND = "analyze_report"
REPORT_VERSION = 1


class AnalysisError(Exception):
    """Misuse of the framework (unknown pass, dependency cycle)."""


def finding(severity: str, pass_name: str, subject: str, detail: str,
            **evidence) -> Dict[str, object]:
    """One normalized finding record (ledger ``_norm`` conventions)."""
    rec: Dict[str, object] = {
        "severity": severity,
        "pass": pass_name,
        "subject": subject,
        "detail": detail,
    }
    if evidence:
        rec["evidence"] = {
            k: obs_ledger._norm(v) for k, v in sorted(evidence.items())
        }
    return rec


class AnalysisContext:
    """Everything a pass may look at for one compiled app.

    ``payloads`` holds the output of already-executed passes, keyed by
    pass name -- a pass may read (but must not mutate) the payload of
    any pass named in its ``requires``.
    """

    def __init__(self, app_name: str, level: str, result, trace,
                 packets: int, seed: int,
                 validate_packets: Optional[int] = 64):
        self.app_name = app_name
        self.level = level
        self.result = result          # CompileResult
        self.trace = trace            # profiling Trace used to compile
        self.packets = packets
        self.seed = seed
        #: cap on replayed roots in the validate pass (None = whole trace)
        self.validate_packets = validate_packets
        self.payloads: Dict[str, Dict[str, object]] = {}
        #: scratch space for expensive shared artifacts (e.g. the
        #: reference capture), keyed by producer; never serialized.
        self.artifacts: Dict[str, object] = {}

    def payload(self, pass_name: str) -> Dict[str, object]:
        try:
            return self.payloads[pass_name]
        except KeyError:
            raise AnalysisError(
                "pass payload %r not available; declare it in requires"
                % pass_name)


class AnalysisPass:
    """Base class: subclass, set ``name``/``requires``, implement run().

    ``run`` returns the pass payload -- a dict that must contain a
    ``findings`` list (possibly empty) and may carry any amount of
    JSON-serializable evidence alongside it.
    """

    name: str = ""
    requires: Tuple[str, ...] = ()
    #: one-line description shown by ``--list``
    doc: str = ""

    def run(self, ctx: AnalysisContext) -> Dict[str, object]:
        raise NotImplementedError


#: Registration order is the topological tie-breaker, so it is part of
#: the report contract: append only.
PASSES: "Dict[str, AnalysisPass]" = {}


def register(pass_obj: AnalysisPass) -> AnalysisPass:
    if not pass_obj.name:
        raise AnalysisError("pass has no name: %r" % (pass_obj,))
    if pass_obj.name in PASSES:
        raise AnalysisError("duplicate pass name: %s" % pass_obj.name)
    PASSES[pass_obj.name] = pass_obj
    return pass_obj


def registered_passes() -> List[AnalysisPass]:
    """All stock passes, importing the modules that register them."""
    _load_stock_passes()
    return list(PASSES.values())


_stock_loaded = False


def _load_stock_passes() -> None:
    global _stock_loaded
    if _stock_loaded:
        return
    # Import for the registration side effect; order defines the
    # topological tie-break.
    from repro.analyze import images as _images    # noqa: F401
    from repro.analyze import layout as _layout    # noqa: F401
    from repro.analyze import bounds as _bounds    # noqa: F401
    from repro.analyze import budget as _budget    # noqa: F401
    from repro.analyze import validate as _validate  # noqa: F401
    _stock_loaded = True


def resolve_passes(names: Optional[Sequence[str]] = None) -> List[AnalysisPass]:
    """The dependency closure of ``names`` in execution order.

    ``None`` selects every registered pass.  Order is deterministic:
    a pass runs after everything it requires, ties broken by
    registration order.
    """
    _load_stock_passes()
    if names is None:
        names = list(PASSES)
    order: List[str] = []
    state: Dict[str, int] = {}      # 1 = visiting, 2 = done

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        if name not in PASSES:
            raise AnalysisError(
                "unknown pass %r (have: %s)" % (name, ", ".join(PASSES)))
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            raise AnalysisError(
                "pass dependency cycle: %s" % " -> ".join(chain + (name,)))
        state[name] = 1
        for dep in PASSES[name].requires:
            visit(dep, chain + (name,))
        state[name] = 2
        order.append(name)

    for name in names:
        visit(name, ())
    return [PASSES[n] for n in order]


def run_analysis(app_name: str, level: str,
                 passes: Optional[Sequence[str]] = None,
                 packets: int = 200, seed: int = 5,
                 validate_packets: Optional[int] = 64,
                 result=None, trace=None) -> Dict[str, object]:
    """Compile ``app_name`` at ``level`` and run the requested passes.

    Returns the full report dict.  A pre-existing compile may be passed
    via ``result``/``trace`` (the sweep orchestrator does this to avoid
    a second compile); it must have been compiled with the decision
    ledger enabled for the ledger cross-checks to have anything to
    check against.
    """
    from repro.apps import get_app
    from repro.compiler import compile_baker
    from repro.options import options_for

    selected = resolve_passes(passes)
    if result is None:
        # Enable the *canonical* ledger module so compiler-side hooks
        # (which import repro.obs.ledger directly) see the same global.
        obs_ledger.enable()
        app = get_app(app_name)
        trace = app.make_trace(packets, seed=seed)
        result = compile_baker(app.source, options_for(level), trace)

    ctx = AnalysisContext(app_name, level, result, trace, packets, seed,
                          validate_packets=validate_packets)
    pass_sections: Dict[str, Dict[str, object]] = {}
    n_findings = 0
    n_errors = 0
    for p in selected:
        payload = p.run(ctx)
        if "findings" not in payload:
            raise AnalysisError("pass %s returned no findings list" % p.name)
        ctx.payloads[p.name] = payload
        pass_sections[p.name] = payload
        for f in payload["findings"]:
            n_findings += 1
            if f.get("severity") == "error":
                n_errors += 1

    report: Dict[str, object] = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "app": app_name,
        "level": level,
        "options": {k: obs_ledger._norm(v)
                    for k, v in sorted(asdict(result.opts).items())},
        "trace": {"packets": packets, "seed": seed},
        "passes": pass_sections,
        "findings_total": n_findings,
        "errors_total": n_errors,
        "ok": n_errors == 0,
    }
    return report


def report_text(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(report_text(report))
