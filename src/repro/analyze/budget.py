"""``budget`` pass: control-store and stack budgets, re-derived.

Re-derives every resource claim an image makes from its final ``insns``
list and compares against (a) the hardware budgets and (b) what the
compiler *recorded* about itself -- the ``codesize``
(:func:`~repro.cg.codesize.record_budget_fit`) and ``melayout``
(:func:`~repro.cg.melayout.record_stack_fit`) decisions in the ledger.
A mismatch in either direction is an error: the image is a liar (its
``code_size`` field disagrees with its instructions) or the ledger is
(its recorded evidence disagrees with the artifact it describes).

The stack check derives a *floor* on Local Memory frame usage from the
static ``thread_rel`` LM accesses actually emitted (dynamic-indexed
accesses cannot be bounded statically and are skipped); the layout's
claimed ``lm_words_used`` must cover that floor and fit the per-thread
window.
"""

from __future__ import annotations

from typing import Dict

from repro.analyze.core import AnalysisContext, AnalysisPass, finding, register
from repro.cg.melayout import (
    CODE_STORE_WORDS,
    SRAM_STACK_BYTES_PER_THREAD,
    STACK_WORDS_PER_THREAD,
)


def _lm_floor(insns) -> int:
    """Words of per-thread LM frame space the code provably touches."""
    floor = 0
    for i in insns:
        if i.kind in ("lm_read", "lm_write") and i.thread_rel \
                and i.base is None:
            floor = max(floor, i.offset + 1)
    return floor


class BudgetPass(AnalysisPass):
    name = "budget"
    requires = ("images",)
    doc = "code-store/stack budgets re-derived vs. ledger claims"

    def run(self, ctx: AnalysisContext):
        findings = []
        ledger_code: Dict[str, object] = {}
        ledger_stack: Dict[str, object] = {}
        for d in ctx.result.decisions:
            if d.pass_name == "codesize":
                ledger_code[d.subject] = d
            elif d.pass_name == "melayout":
                ledger_stack[d.subject] = d

        images_out: Dict[str, object] = {}
        for agg in sorted(ctx.result.images):
            image = ctx.result.images[agg]
            derived = sum(i.size for i in image.insns)
            row: Dict[str, object] = {
                "derived_code_size": derived,
                "claimed_code_size": image.code_size,
                "code_budget": CODE_STORE_WORDS,
                "headroom": CODE_STORE_WORDS - derived,
            }
            if derived != image.code_size:
                findings.append(finding(
                    "error", self.name, image.name,
                    "code_size claims %d words but the instruction list "
                    "sums to %d" % (image.code_size, derived)))
            if derived > CODE_STORE_WORDS:
                findings.append(finding(
                    "error", self.name, image.name,
                    "image exceeds the %d-word control store (%d words)"
                    % (CODE_STORE_WORDS, derived)))
            led = ledger_code.get(agg)
            if led is not None:
                want = "fits" if derived <= CODE_STORE_WORDS else "overflows"
                if (led.evidence.get("code_size") != derived
                        or led.verdict != want):
                    findings.append(finding(
                        "error", self.name, image.name,
                        "ledger codesize record (%s, %s words) disagrees "
                        "with the artifact (%s, %d words)"
                        % (led.verdict, led.evidence.get("code_size"),
                           want, derived)))
            elif ledger_code:
                findings.append(finding(
                    "error", self.name, image.name,
                    "no codesize ledger record for this image"))

            layout = image.stack_layout
            floor = _lm_floor(image.insns)
            row["derived_lm_floor"] = floor
            row["lm_budget"] = STACK_WORDS_PER_THREAD
            if layout is not None:
                row["claimed_lm_words"] = layout.lm_words_used
                row["claimed_sram_words"] = layout.sram_words_used
                if floor > layout.lm_words_used:
                    findings.append(finding(
                        "error", self.name, image.name,
                        "static thread-relative LM accesses reach word %d "
                        "but the layout claims only %d words of frames"
                        % (floor - 1, layout.lm_words_used)))
                if layout.lm_words_used > STACK_WORDS_PER_THREAD:
                    findings.append(finding(
                        "error", self.name, image.name,
                        "stack layout claims %d LM words per thread "
                        "(budget %d)" % (layout.lm_words_used,
                                         STACK_WORDS_PER_THREAD)))
                if layout.sram_words_used * 4 > SRAM_STACK_BYTES_PER_THREAD:
                    findings.append(finding(
                        "error", self.name, image.name,
                        "SRAM overflow frames need %d bytes per thread "
                        "(budget %d)" % (layout.sram_words_used * 4,
                                         SRAM_STACK_BYTES_PER_THREAD)))
                sled = ledger_stack.get(agg)
                if sled is not None and (
                        sled.evidence.get("lm_words") != layout.lm_words_used
                        or sled.evidence.get("sram_words")
                        != layout.sram_words_used):
                    findings.append(finding(
                        "error", self.name, image.name,
                        "ledger melayout record (lm=%s, sram=%s) disagrees "
                        "with the image's stack layout (lm=%d, sram=%d)"
                        % (sled.evidence.get("lm_words"),
                           sled.evidence.get("sram_words"),
                           layout.lm_words_used, layout.sram_words_used)))
            elif floor > STACK_WORDS_PER_THREAD:
                findings.append(finding(
                    "error", self.name, image.name,
                    "static thread-relative LM accesses reach word %d with "
                    "no stack layout recorded" % (floor - 1)))
            images_out[agg] = row
        return {"findings": findings, "images": images_out}


register(BudgetPass())
