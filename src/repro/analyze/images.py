"""``images`` pass: per-image inventory.

The substrate every other pass depends on: one record per compiled
:class:`~repro.cg.assemble.MEImage` with its size, entry points, and
dispatch inputs, plus the instruction-kind histogram.  Having the
inventory as a pass (rather than ambient context) keeps downstream
reports self-describing -- a ``bounds`` section names dispatch paths
that the ``images`` section defines.
"""

from __future__ import annotations

from typing import Dict

from repro.analyze.core import AnalysisContext, AnalysisPass, finding, register


def _kind_histogram(insns) -> Dict[str, int]:
    hist: Dict[str, int] = {}
    for i in insns:
        hist[i.kind] = hist.get(i.kind, 0) + 1
    return hist


class ImagesPass(AnalysisPass):
    name = "images"
    requires = ()
    doc = "per-image inventory (sizes, entries, dispatch inputs)"

    def run(self, ctx: AnalysisContext):
        findings = []
        images = {}
        for agg in sorted(ctx.result.images):
            image = ctx.result.images[agg]
            layout = image.stack_layout
            inputs = []
            for ring_sym, entry_label in image.inputs:
                if entry_label not in image.label_index:
                    findings.append(finding(
                        "error", self.name, image.name,
                        "dispatch input %s targets unknown label %s"
                        % (ring_sym, entry_label)))
                inputs.append({"ring": ring_sym, "entry": entry_label})
            images[agg] = {
                "name": image.name,
                "n_insns": len(image.insns),
                "code_size": image.code_size,
                "entry": image.entry,
                "functions": sorted(image.functions),
                "inputs": inputs,
                "stack": None if layout is None else {
                    "lm_words_used": layout.lm_words_used,
                    "sram_words_used": layout.sram_words_used,
                    "any_sram_frames": bool(layout.any_sram_frames),
                },
                "insn_kinds": _kind_histogram(image.insns),
            }
        if not images:
            findings.append(finding(
                "error", self.name, ctx.app_name,
                "compile produced no ME images (codegen disabled?)"))
        return {"findings": findings, "images": images}


register(ImagesPass())
