"""Compiled-side effect replay for translation validation.

Loads one compile onto a minimal chip (one programmable ME, fast
dispatch, XScale service disabled after boot inits) and replays the
reference capture's roots one at a time: inject the packet exactly the
way the Rx engine would, run until the image has produced as many
externally visible events as the reference expects (plus a drain window
to catch *extra* events), and record each event at the moment the ME
puts it on a ring -- the same at-put-time snapshot discipline the
reference capture uses.

Ring instrumentation: every ring except the image's own input rings and
the buffer free list gets its ``put`` wrapped per-instance --

* channel rings (``tx``, XScale inputs, other external channels) record
  a ``("put", channel, payload, meta)`` event read back from simulated
  SRAM/DRAM;
* ``__meta_free`` records ``("drop",)`` (packet lowering recycles the
  metadata handle last, so one ``__meta_free`` put == one drop);
* image input rings stay unwrapped: a put there (e.g. l3switch's
  ``err_cc`` self-loop) is re-dispatched by the image itself before
  quiescence, not an external effect.

Between roots the monitors are disarmed and all output/input rings are
drained with their packets recycled to the free pools, so ring capacity
and pool size never bound how many roots can be replayed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analyze.capture import CaptureRoot
from repro.baker.packetmodel import BUFFER_BYTES, HEADROOM_BYTES
from repro.ixp.chip import IXP2400
from repro.rts.loader import load_system

#: per-root simulation budget (ME cycles); generous, only reached when
#: the image genuinely fails to produce the expected events.
RUN_CAP_CYCLES = 2_000_000.0
#: post-quiescence window to catch events beyond the expected count.
DRAIN_CYCLES = 25_000.0


class HarnessError(Exception):
    pass


class ImageHarness:
    """Replays capture roots against one compiled ME image."""

    def __init__(self, result, agg_name: str, cmp_words: Tuple[int, ...],
                 run_cap: float = RUN_CAP_CYCLES,
                 drain: float = DRAIN_CYCLES):
        self.result = result
        self.agg_name = agg_name
        self.cmp_words = cmp_words
        self.run_cap = run_cap
        self.drain = drain
        self.timeouts = 0

        self.chip = IXP2400(n_programmable_mes=1)
        load_system(result, self.chip, n_mes=1, dispatch="fast")
        # Boot inits already ran inside load_system; from here on the
        # control processor stays silent so only the image under test
        # touches packets (the reference capture mirrors this).
        self.chip.xscale.service = lambda now: 0.0

        image = result.images[agg_name]
        self._input_rings = [self.chip.rings["ring." + c]
                             for c in sorted(self.input_channels(image))]
        self._meta_free = self.chip.rings["ring.__meta_free"]
        self._buf_free = self.chip.rings["ring.__buf_free"]

        self._armed = False
        self._observed = 0
        self._events: List[tuple] = []
        self._output_rings = []
        input_names = {r.name for r in self._input_rings}
        for name in sorted(self.chip.rings.rings):
            ring = self.chip.rings.rings[name]
            if name in input_names or name == "ring.rx" \
                    or name == "ring.__buf_free":
                continue
            if name == "ring.__meta_free":
                self._wrap_put(ring, drop=True)
            else:
                self._wrap_put(ring, drop=False)
                self._output_rings.append(ring)

    @staticmethod
    def input_channels(image) -> List[str]:
        return [ring_sym[len("ring."):] for ring_sym, _ in image.inputs]

    # -- instrumentation ----------------------------------------------------------

    def _wrap_put(self, ring, drop: bool) -> None:
        orig = ring.put

        def put(value, _orig=orig, _drop=drop, _ring=ring):
            ok = _orig(value)
            if ok and self._armed:
                if _drop:
                    self._events.append(("drop",))
                else:
                    self._events.append(self._snapshot_put(_ring.name, value))
                self._observed += 1
            return ok

        ring.put = put

    def _snapshot_put(self, ring_name: str, handle: int) -> tuple:
        mem = self.chip.memory
        words = mem.read_words("sram", handle, self.chip.meta_words)
        buf, head, length = words[0], words[1], words[2]
        if 0 <= head and 0 <= length and head + length <= BUFFER_BYTES \
                and 0 < buf <= len(mem.stores["dram"]) - BUFFER_BYTES:
            payload = bytes(mem.read_bytes("dram", buf + head, length))
        else:
            # Corrupt geometry is itself a divergence; make it explicit
            # rather than comparing a bogus byte range.
            payload = b"<invalid geometry head=%d len=%d>" % (head, length)
        meta = tuple(words[w] for w in self.cmp_words)
        return ("put", ring_name[len("ring."):], payload, meta)

    # -- replay -------------------------------------------------------------------

    def replay(self, roots: List[CaptureRoot]) -> List[List[tuple]]:
        return [self.replay_root(root) for root in roots]

    def replay_root(self, root: CaptureRoot) -> List[tuple]:
        self._events = []
        self._observed = 0
        self._inject(root)
        expected = len(root.effects)
        self._armed = True
        try:
            if expected:
                before = self.chip.now
                self.chip.run_for(
                    self.run_cap,
                    stop=lambda: self._observed >= expected)
                if self._observed < expected \
                        and self.chip.now - before >= self.run_cap:
                    self.timeouts += 1
            self.chip.run_for(self.drain)
        finally:
            self._armed = False
        self._recycle()
        return self._events

    def _inject(self, root: CaptureRoot) -> None:
        meta = self._meta_free.get()
        buf = self._buf_free.get()
        if meta == 0 or buf == 0:
            raise HarnessError("packet pool exhausted in harness")
        mem = self.chip.memory
        mem.write_bytes("dram", buf, b"\x00" * BUFFER_BYTES)
        mem.write_bytes("dram", buf + HEADROOM_BYTES, root.payload)
        words = [buf, HEADROOM_BYTES, len(root.payload), root.rx_port]
        words += [0] * (self.chip.meta_words - len(words))
        mem.write_words("sram", meta, words)
        ring = self.chip.rings.get("ring." + root.channel)
        if ring is None:
            raise HarnessError("no input ring for channel %r" % root.channel)
        if not ring.put(meta):
            raise HarnessError("input ring %s full" % ring.name)

    def _recycle(self) -> None:
        """Return every packet parked on an output (or leftover input)
        ring to the free pools, monitors disarmed."""
        dram_len = len(self.chip.memory.stores["dram"])
        for ring in self._output_rings + self._input_rings:
            while ring.items:
                handle = ring.get()
                words = self.chip.memory.read_words("sram", handle, 1)
                buf = words[0]
                if buf % BUFFER_BYTES == 0 \
                        and BUFFER_BYTES <= buf <= dram_len - BUFFER_BYTES:
                    self._buf_free.put(buf)
                self._meta_free.put(handle)
