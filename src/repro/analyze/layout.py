"""``layout`` pass: packet-field offsets actually used by each image.

Walks the optimized IR of every function assigned to an ME image and
collects each packet header access (``PktLoadField`` / ``PktStoreField``
/ ``PktLoadWords`` / ``PktStoreWords``) with its handle-relative offset,
width, and SOAR's statically resolved head position.  Each resolved
access is then cross-checked against the ``soar`` records in the
compile's decision ledger: the ledger must contain a record for the same
site with the same ``offset_bits`` (set membership, because PHR re-runs
SOAR and the first run's records carry pre-rebase offsets).

A resolved access with no matching ledger record means SOAR's announced
decisions and the annotations codegen consumed have drifted apart --
exactly the class of silent divergence this analyzer exists to catch.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analyze.core import AnalysisContext, AnalysisPass, finding, register
from repro.ir import instructions as I
from repro.obs import ledger as obs_ledger

#: access classes SOAR records to the ledger (counted=True sites).
_CHECKED = (I.PktLoadField, I.PktStoreField, I.PktLoadWords, I.PktStoreWords)


def _access_row(instr) -> Dict[str, object]:
    row: Dict[str, object] = {
        "op": type(instr).__name__,
        "loc": obs_ledger.loc_str(instr.loc),
        "head_offset_bits": instr.c_offset_bits,
        "alignment": instr.c_alignment,
    }
    if isinstance(instr, (I.PktLoadField, I.PktStoreField)):
        row["proto"] = instr.proto
        row["field"] = instr.field
        row["bit_off"] = instr.bit_off
        row["bit_width"] = instr.bit_width
        if instr.c_offset_bits is not None:
            row["abs_bit_off"] = instr.c_offset_bits + instr.bit_off
    else:
        row["byte_off"] = instr.byte_off
        row["nwords"] = instr.nwords
        if instr.c_offset_bits is not None:
            row["abs_bit_off"] = instr.c_offset_bits + instr.byte_off * 8
    return row


class LayoutPass(AnalysisPass):
    name = "layout"
    requires = ("images",)
    doc = "field offsets/widths per image, cross-checked against SOAR"

    def run(self, ctx: AnalysisContext):
        findings: List[Dict[str, object]] = []
        # The ledger's view of SOAR's resolutions, as a membership set.
        ledger_sites: Set[Tuple[str, str, object]] = set()
        for d in ctx.result.decisions:
            if d.pass_name == "soar" and not d.subject.startswith("channel:"):
                ledger_sites.add((d.subject, d.verdict,
                                  d.evidence.get("offset_bits")))
        have_ledger = bool(ledger_sites)

        mod = ctx.result.mod
        images_out: Dict[str, object] = {}
        for agg in sorted(ctx.result.images):
            image = ctx.result.images[agg]
            accesses: List[Dict[str, object]] = []
            for fn_name in sorted(image.functions):
                fn = mod.functions.get(fn_name)
                if fn is None:
                    continue
                for instr in fn.all_instrs():
                    if not isinstance(instr, _CHECKED):
                        continue
                    row = _access_row(instr)
                    row["function"] = fn_name
                    accesses.append(row)
                    if not have_ledger:
                        continue
                    subject = (obs_ledger.loc_str(instr.loc)
                               or type(instr).__name__)
                    verdict = ("resolved" if instr.c_offset_bits is not None
                               else "unresolved")
                    key = (subject, verdict, instr.c_offset_bits)
                    if key not in ledger_sites:
                        findings.append(finding(
                            "error", self.name,
                            "%s/%s" % (image.name, subject),
                            "access annotation (%s, offset_bits=%s) has no "
                            "matching soar ledger record" %
                            (verdict, instr.c_offset_bits),
                            op=type(instr).__name__, function=fn_name))
            accesses.sort(key=lambda r: (r["function"], str(r["loc"]),
                                         r["op"], str(r.get("abs_bit_off"))))
            resolved = sum(1 for r in accesses
                           if r["head_offset_bits"] is not None)
            images_out[agg] = {
                "accesses": accesses,
                "n_accesses": len(accesses),
                "n_resolved": resolved,
            }
        if not have_ledger and ctx.result.opts.soar:
            findings.append(finding(
                "warning", self.name, ctx.app_name,
                "no soar decisions in ledger; cross-check skipped "
                "(compile ran without the ledger enabled?)"))
        return {"findings": findings, "images": images_out,
                "ledger_sites": len(ledger_sites)}


register(LayoutPass())
