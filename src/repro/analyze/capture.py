"""Reference-side effect capture for translation validation.

Runs the *unoptimized* IR (``lower_program`` on the checked Baker
program -- no aggregation, no PAC/SOAR/PHR/SWC) through the functional
interpreter and records, per trace packet, the multiset of externally
visible packet effects the target ME aggregate must reproduce:

* ``("put", channel, payload, meta)`` -- the packet escaped the
  aggregate (``tx``, an XScale-consumed channel, any external channel
  with no consumer), snapshotted *at put time*;
* ``("drop",)`` -- the packet was dropped.

Deliveries whose consumer PPF lives in the target aggregate are
*spliced*: their effects accumulate into the same root's list, because
the compiled image executes them in the same ME run (internal channels
become direct calls; external self-loop channels, e.g. l3switch's
``err_cc``, are re-dispatched from the image's own input rings before
the harness's quiescence point).  Deliveries to non-target consumers
are **not** executed: the harness runs with the XScale service disabled,
and keeping both sides on the same state evolution is what makes
per-root comparison sound.

Snapshot normalization (shared with the harness via
:func:`comparison_meta_words`): payload bytes plus metadata words from
``META_RX_PORT`` up, excluding words 0-2 (buffer geometry -- identity,
not semantics) and any PHR-localized user words (semantically dead at
escape points by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.baker.packetmodel import META_RX_PORT
from repro.profiler.hostpackets import HostPacket
from repro.profiler.interpreter import Interpreter, InterpError


def comparison_meta_words(meta_words: int,
                          localized_words: Sequence[int]) -> Tuple[int, ...]:
    """Metadata word indices compared between reference and image."""
    skip = set(localized_words)
    return tuple(w for w in range(META_RX_PORT, meta_words)
                 if w not in skip)


def localized_meta_word_indices(result) -> Tuple[int, ...]:
    """Word indices of PHR-localized user metadata fields."""
    phr = result.phr_result
    if phr is None:
        return ()
    fields = result.checked.meta_fields
    return tuple(sorted(fields[name].word_offset
                        for name in phr.localized_meta_fields))


@dataclass
class CaptureRoot:
    """One externally injected packet and its expected effect multiset."""

    index: int
    channel: str
    payload: bytes
    rx_port: int
    effects: List[tuple] = field(default_factory=list)


class CaptureInterpreter(Interpreter):
    """Functional interpreter that records the target aggregate's
    externally visible effects instead of simulating the whole system."""

    def __init__(self, mod, target_ppfs, cmp_words: Tuple[int, ...],
                 fuel: int = 50_000_000):
        super().__init__(mod, fuel=fuel)
        self.target_ppfs = frozenset(target_ppfs)
        self.cmp_words = cmp_words
        self._capture: Optional[List[tuple]] = None

    # -- capture loop -------------------------------------------------------------

    def run_capture(self, trace, max_roots: Optional[int] = None
                    ) -> List[CaptureRoot]:
        rx_consumer = self._ppf_by_channel.get("rx")
        if rx_consumer is None:
            raise InterpError("no PPF consumes 'rx'")
        roots: List[CaptureRoot] = []
        if rx_consumer not in self.target_ppfs:
            return roots  # this aggregate never sees trace input
        for tp in trace:
            if max_roots is not None and len(roots) >= max_roots:
                break
            effects: List[tuple] = []
            self._capture = effects
            try:
                pkt = HostPacket(tp.data, rx_port=tp.rx_port)
                self._deliver(rx_consumer, pkt)
                while self._queue:
                    chan, qpkt = self._queue.popleft()
                    self._deliver(self._ppf_by_channel[chan], qpkt)
            finally:
                self._capture = None
            roots.append(CaptureRoot(len(roots), "rx", tp.data,
                                     tp.rx_port, effects))
        return roots

    # -- effect hooks -------------------------------------------------------------

    def _snapshot_put(self, channel: str, pkt: HostPacket) -> tuple:
        return ("put", channel, bytes(pkt.payload()),
                tuple(pkt.meta.get(w, 0) for w in self.cmp_words))

    def _emit_channel(self, channel: str, pkt) -> None:
        consumer = self._ppf_by_channel.get(channel)
        if channel != "tx" and consumer in self.target_ppfs:
            # Spliced: the compiled image processes this delivery inside
            # the same run (direct call or self-input ring).
            self._queue.append((channel, pkt))
            return
        if self._capture is None:
            raise InterpError(
                "channel put to %r outside a capture root" % channel)
        self._capture.append(self._snapshot_put(channel, pkt))
        if channel == "tx":
            self.profile.packets_out += 1
            self.tx.append(pkt)
        # Non-target consumers are NOT executed: the harness disables
        # the XScale, so mirroring that here keeps global state aligned.

    def _drop_packet(self, pkt) -> None:
        super()._drop_packet(pkt)
        if self._capture is not None:
            self._capture.append(("drop",))


def aggregate_members(result, mod, agg_name: str):
    """PPFs (in the *reference* module's name space) that execute inside
    one ME aggregate.

    The plan's ``ppfs`` list only names the surviving seed PPFs --
    internalized channels turn their consumers into direct calls and the
    consumers disappear from the optimized module entirely.  The closure
    over ``plan.internal_channels`` recovers them: a consumer whose
    internal input channel is fed by an aggregate member runs on that
    member's ME."""
    plan = result.plan
    aggregate = next(a for a in plan.me_aggregates if a.name == agg_name)
    members = set(aggregate.members())
    changed = True
    while changed:
        changed = False
        for name in plan.internal_channels:
            chan = mod.channels.get(name)
            if chan is None or chan.consumer is None:
                continue
            if chan.consumer not in members \
                    and any(p in members for p in chan.producers):
                members.add(chan.consumer)
                changed = True
    return members


def capture_reference(result, trace, agg_name: str,
                      max_roots: Optional[int] = None) -> List[CaptureRoot]:
    """Effect roots for one ME aggregate of a compile."""
    from repro.baker.lowering import lower_program

    mod = lower_program(result.checked)
    cmp_words = comparison_meta_words(
        mod.meta_words, localized_meta_word_indices(result))
    interp = CaptureInterpreter(mod, aggregate_members(result, mod, agg_name),
                                cmp_words)
    interp.run_inits()
    return interp.run_capture(trace, max_roots=max_roots)
